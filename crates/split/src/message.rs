//! Protocol messages exchanged between split-learning clients and the
//! server.

use bytes::Bytes;

use menos_adapters::FineTuneConfig;
use menos_net::{wire_size, FRAME_HEADER_BYTES};

use crate::spec::SplitSpec;

/// A stable client identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u64);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client-{}", self.0)
    }
}

/// Why the server closed a session (carried by
/// [`ServerMessage::Evicted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EvictionCode {
    /// The connection was silent past the server's client timeout; the
    /// session is quarantined and resumable.
    Timeout = 1,
    /// The quarantined session sat idle past `max_session_idle` and was
    /// expired; its state is gone and a `Resume` cannot succeed.
    IdleExpired = 2,
    /// The server is shutting down.
    Shutdown = 3,
}

impl EvictionCode {
    /// The close-code byte on the wire.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses a wire close-code byte.
    pub fn from_code(code: u8) -> Option<EvictionCode> {
        match code {
            1 => Some(EvictionCode::Timeout),
            2 => Some(EvictionCode::IdleExpired),
            3 => Some(EvictionCode::Shutdown),
            _ => None,
        }
    }
}

/// Messages a client sends to the server.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMessage {
    /// Initial connection carrying the fine-tuning configuration the
    /// server will profile (paper §3.3).
    Connect {
        /// The connecting client.
        client: ClientId,
        /// Fine-tuning settings (adapter, optimizer, batch, seq).
        ft: FineTuneConfig,
        /// Where the model is cut.
        split: SplitSpec,
        /// Session epoch the client proposes (fresh sessions start at
        /// 1; each successful resume bumps it). v1.0 peers omit the
        /// field and decode as epoch 0, which the server treats as 1.
        epoch: u64,
        /// Feature-flag bitmask of tensor codecs the client is willing
        /// to receive and send (bit `Codec::tag()`, PROTOCOL.md §7).
        /// v1.0/v1.1 peers omit the field and decode as 0, which
        /// negotiates the raw f32 baseline.
        codecs: u64,
    },
    /// A reconnecting client asks to re-attach to its quarantined
    /// session and continue from where training stopped.
    Resume {
        /// The returning client.
        client: ClientId,
        /// The epoch of the session being resumed; must match the
        /// quarantined session's epoch or the server rejects the
        /// resume as stale.
        epoch: u64,
        /// Optimization steps the client has fully completed — lets
        /// the server detect (and replay) a reply the client never
        /// received.
        last_step: u64,
    },
    /// Intermediate activations `x_c` — the server's forward input
    /// (protocol step 1).
    Activations {
        /// Sender.
        client: ClientId,
        /// Encoded activation tensor.
        frame: Bytes,
    },
    /// Gradients `g_c` w.r.t. the server output — the server's
    /// backward input (protocol step 3).
    Gradients {
        /// Sender.
        client: ClientId,
        /// Encoded gradient tensor.
        frame: Bytes,
    },
    /// The client finished fine-tuning; the server may release its
    /// state.
    Disconnect {
        /// Sender.
        client: ClientId,
    },
    /// A liveness probe (v1.4): the fleet coordinator's health checker
    /// sends one per heartbeat interval and expects a
    /// [`ServerMessage::Pong`] echoing the sequence number. Pings are
    /// stateless — no session is created or touched.
    Ping {
        /// Sender (the prober's identity; not a training session).
        client: ClientId,
        /// Echoed verbatim in the `Pong`, so a prober can match
        /// replies to probes over a persistent connection.
        seq: u64,
    },
    /// A fleet coordinator re-homes one quarantined session onto this
    /// server (v1.4): the blob is a self-contained per-session export
    /// produced by `MenosServer::export_session` on (a snapshot of)
    /// the dead origin server. The session is parked quarantined; the
    /// owning client re-admits it through the ordinary `Resume` path.
    ImportSession {
        /// The client whose session is being migrated (must match the
        /// identity sealed inside the blob).
        client: ClientId,
        /// The exported session record (tagged, versioned, CRC-sealed;
        /// PROTOCOL.md §9.4).
        blob: Bytes,
    },
}

/// Messages the server sends to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMessage {
    /// The client's session is profiled and ready to serve.
    Ready {
        /// Addressee.
        client: ClientId,
        /// The tensor codec the server selected from the client's
        /// advertised set. [`Codec::F32Raw`](menos_net::Codec::F32Raw)
        /// encodes as an empty payload — byte-identical to the v1.1
        /// `Ready` — so un-upgraded peers interoperate unchanged.
        codec: menos_net::Codec,
    },
    /// Server-side forward output `x_s` (protocol step 2).
    ServerActivations {
        /// Addressee.
        client: ClientId,
        /// Encoded activation tensor.
        frame: Bytes,
    },
    /// Server-side gradients `g_s` w.r.t. the client's activations
    /// (protocol step 4).
    ServerGradients {
        /// Addressee.
        client: ClientId,
        /// Encoded gradient tensor.
        frame: Bytes,
    },
    /// The server re-attached the client to its quarantined session.
    Resumed {
        /// Addressee.
        client: ClientId,
        /// The session's new epoch (old epoch + 1); the client carries
        /// it in any later `Resume`.
        epoch: u64,
        /// Optimization steps the server session has completed. Equal
        /// to the client's `last_step`, or one ahead when the server
        /// processed a `Gradients` whose reply the client never saw.
        server_step: u64,
        /// When the server is one step ahead: the full encoded
        /// `ServerGradients` frame the client missed, replayed inside
        /// the handshake so the lock-step one-reply-per-message
        /// contract holds on every pump. Empty otherwise.
        replay: Bytes,
    },
    /// The server evicted the client's connection (best-effort notice;
    /// the connection closes right after).
    Evicted {
        /// Addressee.
        client: ClientId,
        /// Why the session was closed.
        code: EvictionCode,
    },
    /// The server shed the connection at admission — it is at capacity
    /// or the Alg. 2 reservation would oversubscribe the GPU pool
    /// (v1.3). The connection closes right after; no session state was
    /// created, so the client simply reconnects later.
    Busy {
        /// Addressee.
        client: ClientId,
        /// How long the client should wait before reconnecting. A
        /// load-aware hint, not a promise of admission — the client's
        /// retry policy still applies its cap and jitter.
        retry_after_ms: u64,
    },
    /// The fleet coordinator steers the client to the server that owns
    /// (or will own) its session (v1.4). The connection closes right
    /// after; the client dials `addr` and replays its `Connect` or
    /// `Resume` there. Chasing a redirect is placement, not a fault —
    /// it does not consume the client's retry budget.
    Redirect {
        /// Addressee.
        client: ClientId,
        /// Where to reconnect, as a `host:port` socket address.
        addr: String,
        /// How long to wait before dialing `addr` (0 = immediately;
        /// the client's jittered floor still applies).
        retry_after_ms: u64,
    },
    /// Heartbeat reply (v1.4): echoes the probe's sequence number and
    /// reports coarse load, which memory-aware placement feeds on.
    Pong {
        /// Addressee (the prober).
        client: ClientId,
        /// The `Ping`'s sequence number, echoed verbatim.
        seq: u64,
        /// Sessions currently bound to live connections.
        live_sessions: u64,
        /// GPU pool utilization in percent (Alg. 2 reservations over
        /// pool bytes), saturated at 100.
        utilization_pct: u64,
    },
    /// The server accepted an [`ClientMessage::ImportSession`] and
    /// parked the migrated session in quarantine (v1.4). Any failure is
    /// a typed rejection and a closed connection instead — no partial
    /// import is ever acknowledged.
    Imported {
        /// The migrated session's owner.
        client: ClientId,
        /// The epoch the imported session is parked at — the
        /// coordinator's fencing token for the migration.
        epoch: u64,
    },
}

/// Size of a small control frame on the wire.
const CONTROL_BYTES: u64 = 256;

impl ClientMessage {
    /// Bytes this message occupies on the wire. Tensor messages are
    /// exact (frame header + encoded payload); control messages use a
    /// nominal size.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            ClientMessage::Connect { .. }
            | ClientMessage::Resume { .. }
            | ClientMessage::Disconnect { .. }
            | ClientMessage::Ping { .. } => CONTROL_BYTES,
            ClientMessage::Activations { frame, .. } | ClientMessage::Gradients { frame, .. } => {
                FRAME_HEADER_BYTES + frame.len() as u64
            }
            ClientMessage::ImportSession { blob, .. } => FRAME_HEADER_BYTES + blob.len() as u64,
        }
    }

    /// The sender.
    pub fn client(&self) -> ClientId {
        match self {
            ClientMessage::Connect { client, .. }
            | ClientMessage::Resume { client, .. }
            | ClientMessage::Activations { client, .. }
            | ClientMessage::Gradients { client, .. }
            | ClientMessage::Disconnect { client }
            | ClientMessage::Ping { client, .. }
            | ClientMessage::ImportSession { client, .. } => *client,
        }
    }
}

impl ServerMessage {
    /// Bytes this message occupies on the wire. Tensor messages are
    /// exact (frame header + encoded payload); control messages use a
    /// nominal size.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            ServerMessage::Ready { .. }
            | ServerMessage::Evicted { .. }
            | ServerMessage::Busy { .. }
            | ServerMessage::Redirect { .. }
            | ServerMessage::Pong { .. }
            | ServerMessage::Imported { .. } => CONTROL_BYTES,
            ServerMessage::ServerActivations { frame, .. }
            | ServerMessage::ServerGradients { frame, .. } => {
                FRAME_HEADER_BYTES + frame.len() as u64
            }
            ServerMessage::Resumed { replay, .. } => CONTROL_BYTES + replay.len() as u64,
        }
    }

    /// The addressee.
    pub fn client(&self) -> ClientId {
        match self {
            ServerMessage::Ready { client, .. }
            | ServerMessage::ServerActivations { client, .. }
            | ServerMessage::ServerGradients { client, .. }
            | ServerMessage::Resumed { client, .. }
            | ServerMessage::Evicted { client, .. }
            | ServerMessage::Busy { client, .. }
            | ServerMessage::Redirect { client, .. }
            | ServerMessage::Pong { client, .. }
            | ServerMessage::Imported { client, .. } => *client,
        }
    }
}

/// Analytic wire size of a framed activation/gradient message for a
/// workload, without materializing it: protocol frame header plus the
/// encoded `[batch, seq, hidden]` tensor (raw f32 body).
pub fn activation_wire_bytes(batch: usize, seq: usize, hidden: usize) -> u64 {
    activation_wire_bytes_with(menos_net::Codec::F32Raw, batch, seq, hidden)
}

/// Codec-aware [`activation_wire_bytes`]: the analytic engine must
/// charge links with post-compression byte counts, not raw f32 sizes,
/// or WAN steps/s numbers for compressed codecs come out wrong.
pub fn activation_wire_bytes_with(
    codec: menos_net::Codec,
    batch: usize,
    seq: usize,
    hidden: usize,
) -> u64 {
    let dims = [batch, seq, hidden];
    debug_assert_eq!(
        wire_size(&dims),
        menos_net::wire_size_with(menos_net::Codec::F32Raw, &dims)
    );
    FRAME_HEADER_BYTES + menos_net::wire_size_with(codec, &dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use menos_models::ModelConfig;
    use menos_net::encode_tensor;
    use menos_tensor::Tensor;

    #[test]
    fn message_sizes() {
        let t = Tensor::zeros([2, 3, 4]);
        let frame = encode_tensor(&t);
        let msg = ClientMessage::Activations {
            client: ClientId(1),
            frame: frame.clone(),
        };
        assert_eq!(msg.wire_bytes(), FRAME_HEADER_BYTES + frame.len() as u64);
        assert_eq!(msg.client(), ClientId(1));

        let cfg = ModelConfig::tiny_opt(10);
        let connect = ClientMessage::Connect {
            client: ClientId(2),
            ft: menos_adapters::FineTuneConfig::paper(&cfg),
            split: SplitSpec::paper(),
            epoch: 1,
            codecs: 0,
        };
        assert_eq!(connect.wire_bytes(), 256);
        let resume = ClientMessage::Resume {
            client: ClientId(2),
            epoch: 1,
            last_step: 9,
        };
        assert_eq!(resume.wire_bytes(), 256);
        assert_eq!(resume.client(), ClientId(2));
    }

    #[test]
    fn server_message_sizes() {
        let frame = encode_tensor(&Tensor::zeros([4]));
        let msg = ServerMessage::ServerGradients {
            client: ClientId(3),
            frame: frame.clone(),
        };
        assert_eq!(msg.wire_bytes(), FRAME_HEADER_BYTES + frame.len() as u64);
        assert_eq!(msg.client(), ClientId(3));
        assert_eq!(
            ServerMessage::Ready {
                client: ClientId(3),
                codec: menos_net::Codec::F32Raw,
            }
            .wire_bytes(),
            256
        );
    }

    #[test]
    fn analytic_size_matches_real_encoding() {
        // The analytic size must equal the length of the bytes the
        // unified codec actually puts on the wire for that message.
        let t = Tensor::zeros([4, 100, 64]);
        let msg = ClientMessage::Activations {
            client: ClientId(0),
            frame: encode_tensor(&t),
        };
        assert_eq!(
            activation_wire_bytes(4, 100, 64),
            crate::codec::encode_client_message(&msg).len() as u64
        );
        assert_eq!(activation_wire_bytes(4, 100, 64), msg.wire_bytes());
    }

    #[test]
    fn client_id_display() {
        assert_eq!(ClientId(7).to_string(), "client-7");
    }

    #[test]
    fn eviction_codes_round_trip() {
        for code in [
            EvictionCode::Timeout,
            EvictionCode::IdleExpired,
            EvictionCode::Shutdown,
        ] {
            assert_eq!(EvictionCode::from_code(code.code()), Some(code));
        }
        assert_eq!(EvictionCode::from_code(0), None);
        assert_eq!(EvictionCode::from_code(9), None);
        let evicted = ServerMessage::Evicted {
            client: ClientId(3),
            code: EvictionCode::Timeout,
        };
        assert_eq!(evicted.wire_bytes(), 256);
        assert_eq!(evicted.client(), ClientId(3));
    }

    #[test]
    fn busy_is_a_control_message() {
        let busy = ServerMessage::Busy {
            client: ClientId(8),
            retry_after_ms: 125,
        };
        assert_eq!(busy.wire_bytes(), 256);
        assert_eq!(busy.client(), ClientId(8));
    }

    #[test]
    fn fleet_control_messages_have_nominal_sizes() {
        let ping = ClientMessage::Ping {
            client: ClientId(7),
            seq: 3,
        };
        assert_eq!(ping.wire_bytes(), 256);
        assert_eq!(ping.client(), ClientId(7));
        let redirect = ServerMessage::Redirect {
            client: ClientId(7),
            addr: "127.0.0.1:4401".into(),
            retry_after_ms: 10,
        };
        assert_eq!(redirect.wire_bytes(), 256);
        assert_eq!(redirect.client(), ClientId(7));
        let pong = ServerMessage::Pong {
            client: ClientId(7),
            seq: 3,
            live_sessions: 2,
            utilization_pct: 40,
        };
        assert_eq!(pong.wire_bytes(), 256);
        assert_eq!(pong.client(), ClientId(7));
        let imported = ServerMessage::Imported {
            client: ClientId(7),
            epoch: 2,
        };
        assert_eq!(imported.wire_bytes(), 256);
        assert_eq!(imported.client(), ClientId(7));
        // A session blob is sized exactly, like a tensor frame.
        let import = ClientMessage::ImportSession {
            client: ClientId(7),
            blob: Bytes::from(vec![0u8; 100]),
        };
        assert_eq!(import.wire_bytes(), FRAME_HEADER_BYTES + 100);
        assert_eq!(import.client(), ClientId(7));
    }
}

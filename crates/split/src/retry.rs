//! Client-side fault tolerance: capped exponential backoff with
//! deterministic jitter, and the resumable protocol driver.
//!
//! [`drive_client`](crate::drive_client) treats any transport fault as
//! fatal. [`drive_client_resumable`] treats the retryable ones —
//! timeouts, disconnects, I/O faults — as interruptions: it drops the
//! dead connection, backs off per a [`RetryPolicy`], redials, and
//! re-attaches to its quarantined server session with the v1.1
//! `Resume` handshake (PROTOCOL.md §6). The two reconcilable positions
//! map onto client actions directly:
//!
//! * server at the client's step — abort the in-flight step and redo
//!   it (deterministic: batches key on the step index and the
//!   optimizer only advances on completed steps);
//! * server one step ahead — the gradient reply was lost in flight;
//!   apply the copy the server re-delivers inside `Resumed`.
//!
//! Everything else — stale epochs, expired quarantine (`Evicted`),
//! validation rejects — is terminal and surfaces as the typed error.
//!
//! A v1.3 `Busy` shed (PROTOCOL.md §8) sits between those classes: it
//! is retryable, but it is not a *fault* — the server explicitly asked
//! the client to come back. The driver honors the server's
//! `retry_after_ms` hint (jittered upward so a shed herd does not
//! reconnect in lock-step, capped by [`RetryPolicy::max_backoff`])
//! instead of the blind exponential ladder, and a shed does not
//! consume the retry budget.

use std::time::Duration;

use rand::rngs::StdRng;

use menos_data::LossCurve;
use menos_net::DEFAULT_MAX_FRAME;
use menos_sim::{jitter_factor, seeded_rng};

use crate::client::SplitClient;
use crate::codec::decode_server_message;
use crate::message::{ClientMessage, EvictionCode, ServerMessage};
use crate::protocol::{kind_name, ProtocolError, Transport};

/// Floor under every `Busy`/`Redirect` wait: even a zero hint from the
/// server combined with a zero-backoff policy must sleep a little, not
/// spin — a tight reconnect loop against an overloaded server is a
/// self-inflicted DoS. Jitter applies on top, so even floored waits
/// spread a herd.
pub const MIN_BUSY_DELAY: Duration = Duration::from_millis(1);

/// Reconnect policy: how many times to retry, and how long to wait
/// between attempts (capped exponential backoff with deterministic
/// ±50% jitter).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Consecutive failed attempts tolerated before giving up. The
    /// budget refills on every successful handshake, so a long run
    /// survives many *separate* faults as long as each is overcome
    /// within `retries` attempts.
    pub retries: u32,
    /// Backoff before the first retry; doubles per consecutive
    /// failure.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for the jitter stream (decorrelates clients retrying after
    /// a shared fault, deterministically).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 5,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — [`drive_client_resumable`]
    /// degrades to single-shot semantics.
    pub fn none() -> Self {
        RetryPolicy {
            retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// Whether an error is worth retrying: transient transport faults
    /// are; protocol rejections and state-machine violations are not.
    pub fn retryable(e: &ProtocolError) -> bool {
        matches!(
            e,
            ProtocolError::Timeout
                | ProtocolError::Disconnected
                | ProtocolError::Io(_)
                | ProtocolError::SessionActive(_)
                | ProtocolError::Busy { .. }
                | ProtocolError::Redirected { .. }
        )
    }

    /// The sleep before retry number `attempt` (0-based): base backoff
    /// doubled per attempt, capped, jittered ±50%.
    pub fn delay(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        let base = self
            .backoff
            .checked_mul(factor)
            .unwrap_or(self.max_backoff)
            .min(self.max_backoff);
        base.mul_f64(jitter_factor(rng, 0.5))
    }

    /// The sleep after a `Busy` shed (PROTOCOL.md §8.2): the server's
    /// `retry_after_ms` hint overrides the exponential ladder. The
    /// wait is jittered *upward* — `[1×, 2×]` the hint — so the client
    /// never comes back early and a shed herd spreads out, then capped
    /// by [`RetryPolicy::max_backoff`] so a hostile or confused server
    /// cannot park a client forever. A zero hint falls back to the
    /// base backoff as the jitter window — floored at
    /// [`MIN_BUSY_DELAY`], so a zero hint meeting a zero-backoff
    /// policy still sleeps instead of reconnecting in a tight loop.
    pub fn busy_delay(&self, retry_after_ms: u64, rng: &mut StdRng) -> Duration {
        let base = if retry_after_ms == 0 {
            self.backoff.max(MIN_BUSY_DELAY)
        } else {
            Duration::from_millis(retry_after_ms)
        };
        base.mul_f64(jitter_factor(rng, 0.5) + 0.5)
            .min(self.max_backoff.max(MIN_BUSY_DELAY))
    }
}

/// Drives `steps` additional training steps like
/// [`drive_client`](crate::drive_client), but survives transient
/// transport faults: on a retryable error the connection is dropped,
/// the policy's backoff elapses, `connect` mints a fresh transport,
/// and the `Resume` handshake re-attaches the quarantined session.
///
/// `connect` is called once per connection attempt (including the
/// first); for TCP it is a redial, for in-memory transports a fresh
/// dial on the server's listener queue.
///
/// # Errors
///
/// The first non-retryable [`ProtocolError`], or the last error once
/// the retry budget is exhausted. The client's local state is
/// consistent up to its last completed step either way.
pub fn drive_client_resumable<T, F>(
    client: &mut SplitClient,
    mut connect: F,
    steps: usize,
    policy: &RetryPolicy,
) -> Result<LossCurve, ProtocolError>
where
    T: Transport<Tx = ClientMessage, Rx = ServerMessage>,
    F: FnMut() -> Result<T, ProtocolError>,
{
    drive_client_routed(client, |_route| connect(), steps, policy)
}

/// [`drive_client_resumable`] with v1.4 fleet routing (PROTOCOL.md
/// §9): `connect` receives the current target — `None` for the root
/// address the caller started with (a fleet coordinator, or a plain
/// server), or `Some(addr)` after a `Redirect` steered the client.
///
/// Redirects are placement, not faults: chasing one waits at least the
/// hinted delay (jittered, floored like a `Busy` hint) and consumes no
/// retry budget. A retryable *fault* at a redirected target resets the
/// route to the root, so a dead target sends the client back to the
/// coordinator for re-placement instead of redialing a corpse until
/// the budget runs dry.
///
/// # Errors
///
/// As [`drive_client_resumable`].
pub fn drive_client_routed<T, F>(
    client: &mut SplitClient,
    mut connect: F,
    steps: usize,
    policy: &RetryPolicy,
) -> Result<LossCurve, ProtocolError>
where
    T: Transport<Tx = ClientMessage, Rx = ServerMessage>,
    F: FnMut(Option<&str>) -> Result<T, ProtocolError>,
{
    let target = client.steps_completed() + steps;
    let mut rng = seeded_rng(policy.seed, &format!("retry-{}", client.id()));
    let mut established = false;
    let mut attempt: u32 = 0;
    let mut route: Option<String> = None;

    loop {
        let result = connect(route.as_deref()).and_then(|mut transport| {
            handshake(client, &mut transport, &mut established)?;
            // A completed handshake is progress: refill the budget.
            attempt = 0;
            while client.steps_completed() < target {
                run_one_step(client, &mut transport)?;
            }
            transport.send(&ClientMessage::Disconnect {
                client: client.id(),
            })
        });
        match result {
            Ok(()) => return Ok(client.curve().clone()),
            Err(ProtocolError::Busy { retry_after_ms, .. }) => {
                // A shed is not a fault: no session state was touched
                // and the server explicitly invited us back. Honor the
                // hint without consuming the retry budget.
                std::thread::sleep(policy.busy_delay(retry_after_ms, &mut rng));
            }
            Err(ProtocolError::Redirected {
                addr,
                retry_after_ms,
                ..
            }) => {
                // Placement steering (§9.2): dial where the session
                // lives. Like a shed, no budget is consumed, and the
                // same jittered floor applies to the wait.
                route = Some(addr);
                std::thread::sleep(policy.busy_delay(retry_after_ms, &mut rng));
            }
            Err(e) => {
                // The transport was dropped above, so the server sees
                // EOF and quarantines the session before we redial.
                if !RetryPolicy::retryable(&e) || attempt >= policy.retries {
                    return Err(e);
                }
                // A faulted redirected target may be dead; go back to
                // the root for re-placement.
                route = None;
                std::thread::sleep(policy.delay(attempt, &mut rng));
                attempt += 1;
            }
        }
    }
}

/// Runs the connection handshake: `Connect`/`Ready` the first time,
/// `Resume`/`Resumed` with step reconciliation on every reconnect.
fn handshake<T>(
    client: &mut SplitClient,
    transport: &mut T,
    established: &mut bool,
) -> Result<(), ProtocolError>
where
    T: Transport<Tx = ClientMessage, Rx = ServerMessage>,
{
    let id = client.id();
    if !*established {
        transport.send(&ClientMessage::Connect {
            client: id,
            ft: client.ft_config().clone(),
            split: client.split(),
            epoch: client.epoch(),
            codecs: client.advertised_codecs(),
        })?;
        match transport.recv()? {
            ServerMessage::Ready { codec, .. } => {
                client.adopt_codec(codec);
                *established = true;
                Ok(())
            }
            ServerMessage::Busy {
                client: c,
                retry_after_ms,
            } => Err(ProtocolError::Busy {
                client: c,
                retry_after_ms,
            }),
            ServerMessage::Redirect {
                client: c,
                addr,
                retry_after_ms,
            } => Err(ProtocolError::Redirected {
                client: c,
                addr,
                retry_after_ms,
            }),
            other => Err(unexpected("Ready", &other)),
        }
    } else {
        let last_step = client.steps_completed() as u64;
        transport.send(&ClientMessage::Resume {
            client: id,
            epoch: client.epoch(),
            last_step,
        })?;
        match transport.recv()? {
            ServerMessage::Resumed {
                epoch,
                server_step,
                replay,
                ..
            } => {
                client.set_epoch(epoch);
                if server_step == last_step + 1 {
                    // The server finished the step but its reply was
                    // lost; apply the re-delivered copy.
                    if !client.awaiting_gradients() {
                        return Err(ProtocolError::Unexpected(
                            "server replayed a step the client never finished sending".into(),
                        ));
                    }
                    let replayed = decode_server_message(&replay, DEFAULT_MAX_FRAME)?;
                    match replayed {
                        ServerMessage::ServerGradients { frame, .. } => {
                            let g_s = client.decode_frame(&frame)?;
                            client.receive_server_gradients(&g_s);
                        }
                        other => return Err(unexpected("replayed ServerGradients", &other)),
                    }
                } else {
                    // Same step on both sides: redo the aborted
                    // in-flight step (if any) from scratch.
                    client.abort_step();
                }
                Ok(())
            }
            ServerMessage::Evicted { code, .. } => Err(ProtocolError::Rejected(format!(
                "session evicted ({code:?}); resume impossible"
            ))),
            ServerMessage::Busy {
                client: c,
                retry_after_ms,
            } => Err(ProtocolError::Busy {
                client: c,
                retry_after_ms,
            }),
            ServerMessage::Redirect {
                client: c,
                addr,
                retry_after_ms,
            } => Err(ProtocolError::Redirected {
                client: c,
                addr,
                retry_after_ms,
            }),
            other => Err(unexpected("Resumed", &other)),
        }
    }
}

/// One four-step protocol iteration — the loop body of
/// [`drive_client`](crate::drive_client), factored so the resumable
/// driver can restart it cleanly.
fn run_one_step<T>(client: &mut SplitClient, transport: &mut T) -> Result<(), ProtocolError>
where
    T: Transport<Tx = ClientMessage, Rx = ServerMessage>,
{
    let id = client.id();
    let x_c = client.start_step();
    let frame = client.encode_activations(&x_c);
    transport.send(&ClientMessage::Activations { client: id, frame })?;
    let x_s = match transport.recv()? {
        ServerMessage::ServerActivations { frame, .. } => client.decode_frame(&frame)?,
        ServerMessage::Evicted { code, .. } => return Err(evicted_mid_run(code)),
        other => return Err(unexpected("ServerActivations", &other)),
    };
    let (_loss, g_c) = client.receive_server_activations(&x_s);
    let frame = client.encode_gradients(&g_c);
    transport.send(&ClientMessage::Gradients { client: id, frame })?;
    let g_s = match transport.recv()? {
        ServerMessage::ServerGradients { frame, .. } => client.decode_frame(&frame)?,
        ServerMessage::Evicted { code, .. } => return Err(evicted_mid_run(code)),
        other => return Err(unexpected("ServerGradients", &other)),
    };
    client.receive_server_gradients(&g_s);
    Ok(())
}

/// Classifies an `Evicted` notice arriving *mid-step*. `Timeout` and
/// `Shutdown` park the session in quarantine (PROTOCOL.md §6.4) — the
/// server invites a later `Resume`, possibly at a different home after
/// a fleet failover — so they map to the retryable disconnect the
/// notice accompanies. `IdleExpired` means the parked state is gone:
/// terminal.
fn evicted_mid_run(code: EvictionCode) -> ProtocolError {
    match code {
        EvictionCode::Timeout | EvictionCode::Shutdown => ProtocolError::Disconnected,
        EvictionCode::IdleExpired => {
            ProtocolError::Rejected("session evicted (IdleExpired); cannot continue".into())
        }
    }
}

fn unexpected(wanted: &str, got: &ServerMessage) -> ProtocolError {
    ProtocolError::Unexpected(format!("expected {wanted}, got {}", kind_name(got)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(RetryPolicy::retryable(&ProtocolError::Timeout));
        assert!(RetryPolicy::retryable(&ProtocolError::Disconnected));
        assert!(RetryPolicy::retryable(&ProtocolError::Io(
            std::io::Error::other("x")
        )));
        assert!(RetryPolicy::retryable(&ProtocolError::SessionActive(
            crate::ClientId(1)
        )));
        assert!(RetryPolicy::retryable(&ProtocolError::Busy {
            client: crate::ClientId(1),
            retry_after_ms: 50,
        }));
        assert!(RetryPolicy::retryable(&ProtocolError::Redirected {
            client: crate::ClientId(1),
            addr: "10.0.0.3:4400".into(),
            retry_after_ms: 0,
        }));
        assert!(!RetryPolicy::retryable(&ProtocolError::Rejected(
            "r".into()
        )));
        assert!(!RetryPolicy::retryable(&ProtocolError::StaleEpoch {
            client: crate::ClientId(1),
            expected: 2,
            got: 1,
        }));
        assert!(!RetryPolicy::retryable(&ProtocolError::OutOfOrder(
            "o".into()
        )));
    }

    #[test]
    fn delay_doubles_caps_and_is_deterministic() {
        let policy = RetryPolicy {
            retries: 8,
            backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(500),
            seed: 7,
        };
        let mut a = seeded_rng(7, "retry-client-0");
        let mut b = seeded_rng(7, "retry-client-0");
        let da: Vec<Duration> = (0..6).map(|i| policy.delay(i, &mut a)).collect();
        let db: Vec<Duration> = (0..6).map(|i| policy.delay(i, &mut b)).collect();
        assert_eq!(da, db, "same seed, same delays");
        // Jitter is ±50%, so attempt i's delay lies within
        // [base/2, 3*base/2] where base = min(100ms << i, 500ms).
        for (i, d) in da.iter().enumerate() {
            let base = Duration::from_millis(100)
                .saturating_mul(1 << i)
                .min(Duration::from_millis(500));
            assert!(*d >= base / 2 && *d <= base * 3 / 2, "attempt {i}: {d:?}");
        }
        // The cap binds from attempt 3 on (800ms -> 500ms).
        assert!(da[4] <= Duration::from_millis(750));
        // A huge attempt index must not overflow the shift.
        let _ = policy.delay(40, &mut a);
    }

    /// The jitter stream is seeded per (policy seed, client): two
    /// clients retrying after a shared fault must not sleep in
    /// lock-step, but each stream is individually reproducible.
    #[test]
    fn jitter_streams_decorrelate_across_seeds() {
        let policy = RetryPolicy {
            backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(10),
            ..RetryPolicy::default()
        };
        let mut a = seeded_rng(7, "retry-client-0");
        let mut b = seeded_rng(8, "retry-client-0");
        let mut c = seeded_rng(7, "retry-client-1");
        let da: Vec<Duration> = (0..8).map(|i| policy.delay(i, &mut a)).collect();
        let db: Vec<Duration> = (0..8).map(|i| policy.delay(i, &mut b)).collect();
        let dc: Vec<Duration> = (0..8).map(|i| policy.delay(i, &mut c)).collect();
        assert_ne!(da, db, "different policy seeds must decorrelate");
        assert_ne!(da, dc, "different clients must decorrelate");
    }

    /// PROTOCOL.md §8.2: the `Busy` hint overrides the exponential
    /// ladder — the sleep is at least the hint (jittered upward to
    /// spread the herd) — but the policy's backoff cap still binds as
    /// an upper bound, and a zero hint degrades to the base backoff.
    #[test]
    fn busy_delay_honors_hint_and_backoff_cap() {
        let policy = RetryPolicy {
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            ..RetryPolicy::default()
        };
        let mut rng = seeded_rng(3, "busy");
        for _ in 0..32 {
            let d = policy.busy_delay(40, &mut rng);
            assert!(
                d >= Duration::from_millis(40) && d <= Duration::from_millis(80),
                "hinted delay {d:?} outside [1x, 2x] the hint"
            );
            // A hint at or past the cap pins the sleep to the cap.
            assert_eq!(policy.busy_delay(500, &mut rng), policy.max_backoff);
            let d = policy.busy_delay(0, &mut rng);
            assert!(
                d >= Duration::from_millis(10) && d <= Duration::from_millis(20),
                "zero hint must fall back to the base backoff, got {d:?}"
            );
        }
        // Same seed, same stream: the herd spread is reproducible.
        let mut a = seeded_rng(9, "busy");
        let mut b = seeded_rng(9, "busy");
        let da: Vec<Duration> = (0..6).map(|_| policy.busy_delay(25, &mut a)).collect();
        let db: Vec<Duration> = (0..6).map(|_| policy.busy_delay(25, &mut b)).collect();
        assert_eq!(da, db);
    }

    /// The degenerate corner of §8.2: a server hinting `retry_after_ms:
    /// 0` at a client whose policy has zero backoff must NOT permit a
    /// tight reconnect loop — the jittered floor applies instead.
    #[test]
    fn busy_delay_zero_hint_zero_backoff_still_sleeps() {
        let zeroed = RetryPolicy {
            retries: 0,
            backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            seed: 11,
        };
        let mut rng = seeded_rng(11, "busy-floor");
        for _ in 0..64 {
            let d = zeroed.busy_delay(0, &mut rng);
            assert!(
                d >= MIN_BUSY_DELAY,
                "zero hint + zero backoff slept only {d:?}"
            );
            assert!(d <= MIN_BUSY_DELAY * 2, "floored delay {d:?} unjittered?");
            // A nonzero hint is floored too, never crushed to zero by
            // a zero max_backoff.
            assert!(zeroed.busy_delay(1, &mut rng) >= MIN_BUSY_DELAY);
        }
        // A sane policy is unaffected by the floor: the existing
        // backoff window binds, not MIN_BUSY_DELAY.
        let sane = RetryPolicy {
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            ..RetryPolicy::default()
        };
        let d = sane.busy_delay(0, &mut rng);
        assert!(d >= Duration::from_millis(10) && d <= Duration::from_millis(20));
    }

    // ------------------------------------------------------------------
    // End-to-end driver tests against a minimal resumable echo server.
    // ------------------------------------------------------------------

    use std::sync::{Arc, Mutex};

    use bytes::Bytes;

    use crate::client::SplitClient;
    use crate::protocol::{channel_pair, serve_loop, ChannelTransport, MessageHandler};
    use crate::ClientId;

    /// The smallest resumable server: echoes tensor frames back (the
    /// shapes line up because both cut tensors are `[batch, seq,
    /// hidden]`), keeps no per-step state, and — unlike
    /// `SessionHandler` — survives connection loss so `Resume` works.
    /// `kill_every` injects a handler-side fault every N messages.
    struct EchoHandler {
        epoch: u64,
        kill_every: u32,
        handled: u32,
    }

    impl MessageHandler for EchoHandler {
        fn handle(&mut self, msg: ClientMessage) -> Result<Option<ServerMessage>, ProtocolError> {
            if self.kill_every > 0 {
                self.handled += 1;
                if self.handled % self.kill_every == 0 {
                    return Err(ProtocolError::Disconnected);
                }
            }
            Ok(match msg {
                ClientMessage::Connect { client, .. } => Some(ServerMessage::Ready {
                    client,
                    codec: menos_net::Codec::F32Raw,
                }),
                ClientMessage::Resume {
                    client,
                    epoch,
                    last_step,
                } => {
                    self.epoch = epoch + 1;
                    Some(ServerMessage::Resumed {
                        client,
                        epoch: self.epoch,
                        server_step: last_step,
                        replay: Bytes::new(),
                    })
                }
                ClientMessage::Activations { client, frame } => {
                    Some(ServerMessage::ServerActivations { client, frame })
                }
                ClientMessage::Gradients { client, frame } => {
                    Some(ServerMessage::ServerGradients { client, frame })
                }
                ClientMessage::Disconnect { .. } => None,
                ClientMessage::Ping { client, seq } => Some(ServerMessage::Pong {
                    client,
                    seq,
                    live_sessions: 0,
                    utilization_pct: 0,
                }),
                ClientMessage::ImportSession { .. } => {
                    return Err(ProtocolError::Unexpected(
                        "echo handler does not import sessions".into(),
                    ))
                }
            })
        }

        fn connection_lost(&mut self, _client: ClientId) {
            // Keep the session resumable — the whole point.
        }
    }

    fn test_client(seed: u64) -> SplitClient {
        use menos_adapters::FineTuneConfig;
        use menos_data::{wiki_corpus, TokenDataset, Vocab};
        use menos_models::{CausalLm, ModelConfig};

        let text = wiki_corpus(5, 4000);
        let vocab = Vocab::from_text(&text);
        let cfg = ModelConfig::tiny_opt(33);
        let mut rng = seeded_rng(100, "retry-test");
        let ps = menos_models::init_params(&cfg, &mut rng);
        let ds = TokenDataset::new(vocab.encode(&text), 16, 5);
        let mut ft = FineTuneConfig::paper(&cfg);
        ft.batch_size = 2;
        ft.seq_len = 16;
        SplitClient::new(
            ClientId(0),
            CausalLm::bind(&cfg, &ps.shared_view(false)),
            crate::spec::SplitSpec::paper(),
            ft,
            ds,
            seed,
        )
    }

    /// Spawns a `serve_loop` pump over the shared echo handler and
    /// returns the client endpoint.
    fn dial_echo(
        handler: &Arc<Mutex<EchoHandler>>,
    ) -> ChannelTransport<ClientMessage, ServerMessage> {
        let (client_t, mut server_t) = channel_pair();
        let mut h = handler.clone();
        std::thread::spawn(move || {
            let _ = serve_loop(&mut server_t, &mut h);
        });
        client_t
    }

    /// A `Busy` shed is not a fault: even with a zero retry budget the
    /// driver sleeps the hint and reconnects, as many times as it is
    /// shed, and still completes.
    #[test]
    fn busy_shed_does_not_consume_the_retry_budget() {
        let policy = RetryPolicy {
            retries: 0,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            seed: 1,
        };
        let handler = Arc::new(Mutex::new(EchoHandler {
            epoch: 1,
            kill_every: 0,
            handled: 0,
        }));
        let mut client = test_client(1);
        let mut shed_conns = Vec::new(); // keep server ends alive
        let mut dials = 0u32;
        let curve = drive_client_resumable(
            &mut client,
            || {
                dials += 1;
                if dials <= 2 {
                    // Shed with a hint, twice, before admitting.
                    let (client_t, mut server_t) = channel_pair();
                    server_t.send(&ServerMessage::Busy {
                        client: ClientId(0),
                        retry_after_ms: 1,
                    })?;
                    shed_conns.push(server_t);
                    Ok(client_t)
                } else {
                    Ok(dial_echo(&handler))
                }
            },
            3,
            &policy,
        )
        .expect("busy sheds must not exhaust a zero retry budget");
        assert_eq!(curve.points().len(), 3);
        assert_eq!(dials, 3, "two sheds, then one admitted connection");
    }

    /// A `Redirect` is placement, not a fault: with a zero retry
    /// budget the routed driver chases it to the named address and
    /// completes. The plain connect path (`route == None`) plays the
    /// coordinator; the redirected path dials the echo server.
    #[test]
    fn routed_driver_chases_redirects_without_budget() {
        let policy = RetryPolicy {
            retries: 0,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            seed: 4,
        };
        let handler = Arc::new(Mutex::new(EchoHandler {
            epoch: 1,
            kill_every: 0,
            handled: 0,
        }));
        let mut client = test_client(4);
        let mut coordinator_conns = Vec::new();
        let mut routes_seen = Vec::new();
        let curve = drive_client_routed(
            &mut client,
            |route| {
                routes_seen.push(route.map(str::to_owned));
                match route {
                    None => {
                        // The "coordinator": answer the handshake with
                        // a Redirect and keep the connection alive long
                        // enough for the client to read it.
                        let (client_t, mut server_t) = channel_pair();
                        server_t.send(&ServerMessage::Redirect {
                            client: ClientId(0),
                            addr: "worker-1".into(),
                            retry_after_ms: 0,
                        })?;
                        coordinator_conns.push(server_t);
                        Ok(client_t)
                    }
                    Some("worker-1") => Ok(dial_echo(&handler)),
                    Some(other) => panic!("unexpected route {other}"),
                }
            },
            3,
            &policy,
        )
        .expect("a redirect must not consume the (zero) retry budget");
        assert_eq!(curve.points().len(), 3);
        assert_eq!(
            routes_seen,
            vec![None, Some("worker-1".to_owned())],
            "root dial, then exactly one chased redirect"
        );
    }

    /// A retryable fault at a redirected target resets the route to
    /// the root for re-placement instead of redialing the dead target.
    #[test]
    fn routed_driver_falls_back_to_root_when_target_dies() {
        let policy = RetryPolicy {
            retries: 2,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            seed: 5,
        };
        let handler = Arc::new(Mutex::new(EchoHandler {
            epoch: 1,
            kill_every: 0,
            handled: 0,
        }));
        let mut client = test_client(5);
        let mut coordinator_conns = Vec::new();
        let mut routes_seen = Vec::new();
        let curve = drive_client_routed(
            &mut client,
            |route| {
                routes_seen.push(route.map(str::to_owned));
                match route {
                    None => {
                        let (client_t, mut server_t) = channel_pair();
                        let addr = if coordinator_conns.is_empty() {
                            "dead-worker"
                        } else {
                            "live-worker"
                        };
                        server_t.send(&ServerMessage::Redirect {
                            client: ClientId(0),
                            addr: addr.into(),
                            retry_after_ms: 0,
                        })?;
                        coordinator_conns.push(server_t);
                        Ok(client_t)
                    }
                    // The first placement is a corpse: dialing it fails.
                    Some("dead-worker") => Err(ProtocolError::Disconnected),
                    Some("live-worker") => Ok(dial_echo(&handler)),
                    Some(other) => panic!("unexpected route {other}"),
                }
            },
            2,
            &policy,
        )
        .expect("a dead target must send the client back for re-placement");
        assert_eq!(curve.points().len(), 2);
        assert_eq!(
            routes_seen,
            vec![
                None,
                Some("dead-worker".to_owned()),
                None,
                Some("live-worker".to_owned()),
            ],
            "placed, target dead, re-placed at the root, completed"
        );
    }

    /// The retry budget refills on every successful handshake: with
    /// `retries: 1`, a run interrupted by two separate faults (each
    /// overcome within one attempt) still completes.
    #[test]
    fn retry_budget_refills_on_successful_handshake() {
        let policy = RetryPolicy {
            retries: 1,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            seed: 2,
        };
        // Kill every 5th handler message: Connect, act, grad, act,
        // KILL — then per reconnect: Resume, act, grad, act, KILL —
        // one completed step per connection, two faults total.
        let handler = Arc::new(Mutex::new(EchoHandler {
            epoch: 1,
            kill_every: 5,
            handled: 0,
        }));
        let mut client = test_client(2);
        let mut dials = 0u32;
        let curve = drive_client_resumable(
            &mut client,
            || {
                dials += 1;
                Ok(dial_echo(&handler))
            },
            3,
            &policy,
        )
        .expect("per-fault budget must refill after each successful handshake");
        assert_eq!(curve.points().len(), 3);
        assert!(
            dials >= 3,
            "expected at least two faulted reconnects, got {dials} dials"
        );
    }
}

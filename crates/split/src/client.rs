//! The split fine-tuning client: input section `f_i`, output section
//! `f_o`, local data, and local adapter optimization.

use bytes::Bytes;

use menos_adapters::{build_optimizer, inject_adapters, FineTuneConfig, Optimizer};
use menos_data::{Batch, LossCurve, TokenDataset};
use menos_models::{causal_lm_loss, CausalLm};
use menos_net::{TensorCodec, WireError, ROLE_ACTIVATIONS, ROLE_GRADIENTS};
use menos_sim::seeded_rng;
use menos_tensor::{GradStore, Tensor};

use crate::message::ClientId;
use crate::spec::SplitSpec;

struct PendingStep {
    x_c: Tensor,
    targets: Vec<usize>,
    head_grads: Option<GradStore>,
}

/// A split-learning client executing the real engine.
///
/// The client owns a model *structure* but only ever evaluates its own
/// sections: the embedding plus the first `front_layers` blocks
/// (producing `x_c`), and the final norm + LM head (consuming `x_s`).
/// Client-side adapters (in the front blocks) are trained locally with
/// the client's own optimizer; the server trains its own adapters —
/// neither party sees the other's gradients beyond the cut tensors.
///
/// One fine-tuning iteration follows the paper's four steps:
///
/// 1. [`SplitClient::start_step`] → send `x_c`;
/// 2. receive `x_s` → [`SplitClient::receive_server_activations`] →
///    send `g_c`;
/// 3. receive `g_s` → [`SplitClient::receive_server_gradients`] →
///    local optimizer step.
pub struct SplitClient {
    id: ClientId,
    model: CausalLm,
    split: SplitSpec,
    ft: FineTuneConfig,
    dataset: TokenDataset,
    optimizer: Box<dyn Optimizer>,
    adapter_params: menos_tensor::ParamStore,
    step: usize,
    epoch: u64,
    pending: Option<PendingStep>,
    accum: Option<GradStore>,
    micro: usize,
    curve: LossCurve,
    advertised_codecs: u64,
    codec: TensorCodec,
}

impl SplitClient {
    /// Builds a client over an already-bound model structure.
    ///
    /// Adapters are injected into the client's front blocks using a
    /// deterministic stream derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the split or fine-tune configuration is invalid for
    /// the model.
    pub fn new(
        id: ClientId,
        mut model: CausalLm,
        split: SplitSpec,
        ft: FineTuneConfig,
        dataset: TokenDataset,
        seed: u64,
    ) -> Self {
        split.validate(&model.config).expect("invalid split spec");
        let mut rng = seeded_rng(seed, "client-adapters");
        let params = inject_adapters(&mut model, split.client_range(), &ft, &mut rng);
        let optimizer = build_optimizer(&ft, params.tensors().cloned().collect());
        SplitClient {
            id,
            model,
            split,
            ft,
            dataset,
            optimizer,
            adapter_params: params,
            step: 0,
            epoch: 1,
            pending: None,
            accum: None,
            micro: 0,
            curve: LossCurve::new(),
            advertised_codecs: 0,
            codec: TensorCodec::default(),
        }
    }

    /// Feature-flag bitmask of tensor codecs this client advertises in
    /// `Connect` (PROTOCOL.md §7). Zero — the default — keeps the
    /// handshake byte-identical to v1.1 and negotiates the raw f32
    /// baseline.
    pub fn advertised_codecs(&self) -> u64 {
        self.advertised_codecs
    }

    /// Sets the codec bitmask advertised on the next `Connect`. Pass
    /// `codec.flag()` for a single codec, or a union of flags to let
    /// the server pick (it chooses the highest-tag codec it supports).
    pub fn set_advertised_codecs(&mut self, mask: u64) {
        self.advertised_codecs = mask;
    }

    /// The tensor codec negotiated with the server (raw until a `Ready`
    /// carrying a codec echo is adopted).
    pub fn codec(&self) -> menos_net::Codec {
        self.codec.codec()
    }

    /// Adopts the codec echoed by the server's `Ready`, resetting any
    /// error-feedback residuals if the codec changed.
    pub fn adopt_codec(&mut self, codec: menos_net::Codec) {
        self.codec.set_codec(codec);
    }

    /// Encodes an outgoing client activation tensor (`x_c`) under the
    /// negotiated codec, updating error-feedback residuals for lossy
    /// codecs.
    pub fn encode_activations(&mut self, t: &Tensor) -> Bytes {
        self.codec.encode(ROLE_ACTIVATIONS, t)
    }

    /// Encodes an outgoing client gradient tensor (`g_c`) under the
    /// negotiated codec, updating error-feedback residuals for lossy
    /// codecs.
    pub fn encode_gradients(&mut self, t: &Tensor) -> Bytes {
        self.codec.encode(ROLE_GRADIENTS, t)
    }

    /// Decodes a received tensor frame, accepting raw bodies always and
    /// compressed bodies only under the negotiated codec.
    ///
    /// # Errors
    ///
    /// [`WireError`] if the body is malformed or compressed with a
    /// codec that was not negotiated.
    pub fn decode_frame(&self, frame: &Bytes) -> Result<Tensor, WireError> {
        self.codec.decode(frame)
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Completed optimization steps.
    pub fn steps_completed(&self) -> usize {
        self.step
    }

    /// The session epoch this client is at: 1 for a fresh session,
    /// bumped by the server on every successful resume.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Adopts the epoch returned by a successful resume.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The client-side adapter parameters (the state a resume must
    /// preserve bit-for-bit).
    pub fn adapter_params(&self) -> &menos_tensor::ParamStore {
        &self.adapter_params
    }

    /// True when a step is in flight and the loss has already been
    /// recorded — the client owes the server gradients, or is owed the
    /// server's gradient reply.
    pub fn awaiting_gradients(&self) -> bool {
        self.pending
            .as_ref()
            .is_some_and(|p| p.head_grads.is_some())
    }

    /// Abandons the in-flight step (if any) so it can be redone
    /// deterministically after a reconnect, rolling back the
    /// provisionally recorded loss point. Returns true if a step was
    /// abandoned.
    ///
    /// Safe at any protocol position: the optimizer only steps in
    /// [`SplitClient::receive_server_gradients`], which also completes
    /// the step — so an in-flight step has never touched persistent
    /// state except the curve point pushed by
    /// [`SplitClient::receive_server_activations`].
    pub fn abort_step(&mut self) -> bool {
        match self.pending.take() {
            Some(p) => {
                if p.head_grads.is_some() {
                    self.curve.pop();
                }
                true
            }
            None => false,
        }
    }

    /// The loss curve recorded so far.
    pub fn curve(&self) -> &LossCurve {
        &self.curve
    }

    /// The fine-tuning configuration this client reports on connect.
    pub fn ft_config(&self) -> &FineTuneConfig {
        &self.ft
    }

    /// The split this client requests.
    pub fn split(&self) -> SplitSpec {
        self.split
    }

    /// Step 1: runs the input section on the next batch and returns
    /// `x_c` (detached — gradients stop at the wire, as in real split
    /// learning).
    ///
    /// # Panics
    ///
    /// Panics if a step is already in flight.
    pub fn start_step(&mut self) -> Tensor {
        assert!(
            self.pending.is_none(),
            "{} started a step with one already in flight",
            self.id
        );
        let batch: Batch = self.dataset.batch(self.step, self.ft.batch_size);
        let x = self
            .model
            .embed_forward(&batch.inputs, batch.batch_size, batch.seq_len);
        let x_c = self.model.blocks_forward(&x, self.split.client_range());
        self.pending = Some(PendingStep {
            x_c: x_c.clone(),
            targets: batch.targets,
            head_grads: None,
        });
        x_c.detach()
    }

    /// Step 3 (client side): consumes the server activations `x_s`,
    /// computes the loss through the output section, and returns
    /// `(loss, g_c)` where `g_c` is the gradient w.r.t. `x_s` to send
    /// back.
    ///
    /// # Panics
    ///
    /// Panics if no step is in flight.
    pub fn receive_server_activations(&mut self, x_s: &Tensor) -> (f32, Tensor) {
        let pending = self.pending.as_mut().expect("no step in flight");
        // Treat the received activations as a trainable leaf so the
        // backward pass yields the gradient to ship to the server.
        let x_s_leaf =
            Tensor::from_shared_storage(x_s.storage().clone(), x_s.shape().clone(), true);
        let logits = self.model.head_forward(&x_s_leaf);
        let loss = causal_lm_loss(&logits, &pending.targets);
        let loss_value = loss.to_scalar();
        let mut grads = loss.backward();
        let g_c = grads
            .remove(&x_s_leaf)
            .expect("gradient for server activations");
        pending.head_grads = Some(grads);
        self.curve.push(self.step, loss_value);
        (loss_value, g_c)
    }

    /// Final step: consumes the server gradients `g_s`, finishes
    /// back-propagation through the input section, and applies the
    /// local optimizer.
    ///
    /// # Panics
    ///
    /// Panics if the protocol order was violated.
    pub fn receive_server_gradients(&mut self, g_s: &Tensor) {
        let pending = self.pending.take().expect("no step in flight");
        let mut grads = pending.x_c.backward_with_grad(g_s);
        grads.merge(pending.head_grads.expect("head grads recorded"));
        // Gradient accumulation: average k micro-steps into one
        // optimizer step.
        match &mut self.accum {
            Some(acc) => acc.merge(grads),
            None => self.accum = Some(grads),
        }
        self.micro += 1;
        let k = self.ft.grad_accumulation.max(1);
        if self.micro >= k {
            let mut acc = self.accum.take().expect("accumulated grads");
            if k > 1 {
                acc.scale(1.0 / k as f32);
            }
            self.optimizer.step(&acc);
            self.micro = 0;
        }
        self.step += 1;
    }
}

impl std::fmt::Debug for SplitClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SplitClient")
            .field("id", &self.id)
            .field("split", &self.split)
            .field("steps", &self.step)
            .field("in_flight", &self.pending.is_some())
            .finish()
    }
}

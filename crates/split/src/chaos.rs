//! Deterministic chaos injection for the event-driven server path.
//!
//! [`FaultTransport`](crate::FaultTransport) scripts faults into the
//! *blocking* server pump; this module extends the idea to the
//! nonblocking path: [`ChaosListener`] wraps any
//! [`EventListener`](crate::EventListener) and hands the event loop
//! [`ChaosConn`]s that inject scripted faults — hangups on the read
//! path, hangups while queueing replies, and reply delays that force
//! the loop through its partial-write flush machinery.
//!
//! Faults are *scripted, not random at runtime*: each connection
//! learns its client id from the `Connect`/`Resume` message passing
//! through it, counts that client's **incarnation** (connection
//! attempt number), and derives its fault plan from
//! `seeded_rng(seed, "chaos-{client}-{incarnation}")`. The plan
//! therefore depends only on the seed and on how many times that
//! client has connected — not on accept order, sweep timing, or
//! thread interleaving — so a chaos run is reproducible from its seed
//! alone.
//!
//! Faults land only at message boundaries, so a client that survives
//! (via the `Resume` handshake) must produce a loss curve
//! **bit-identical** to a fault-free run — the soak test's core
//! assertion. That includes [`Fault::CorruptBody`], the one fault that
//! does touch bytes: it mangles a tensor frame so decoding *must*
//! reject it with a typed wire error before any training state is
//! touched — a corrupt frame is never trained on, it only costs the
//! connection. Kills are budgeted per client
//! ([`ChaosOptions::max_faulted_incarnations`]): after the budget is
//! spent, later incarnations run clean, so retrying clients always
//! finish.
//!
//! One deliberate gap in the fault model: replies to a `Resume`
//! handshake are exempt from queue-kills. Killing the `Resumed` reply
//! after the server has already bumped the session epoch would strand
//! the client with a stale epoch by design — detecting exactly that
//! zombie case is what the epoch is *for* — so the chaos plan only
//! kills tensor-reply queues.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use rand::Rng;

use menos_sim::seeded_rng;

use crate::event_loop::{EventConn, EventListener};
use crate::message::{ClientId, ClientMessage, ServerMessage};
use crate::protocol::ProtocolError;

/// Tuning for a chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosOptions {
    /// Root seed; every per-connection plan derives from it.
    pub seed: u64,
    /// How many of a client's first incarnations may draw a fault.
    /// Later incarnations always run clean, bounding the retries any
    /// client needs to finish.
    pub max_faulted_incarnations: u64,
    /// Longest reply hold, in flush calls, a delay fault may impose.
    pub max_hold_flushes: u32,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 0xC4A05,
            max_faulted_incarnations: 2,
            max_hold_flushes: 3,
        }
    }
}

impl ChaosOptions {
    /// Reads the seed from `MENOS_CHAOS_SEED` (decimal), keeping the
    /// other knobs at their defaults — how CI pins a soak run.
    pub fn from_env() -> Self {
        let mut options = ChaosOptions::default();
        if let Some(seed) = std::env::var("MENOS_CHAOS_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            options.seed = seed;
        }
        options
    }
}

/// One incarnation's scripted fault.
///
/// The matrix splits into two families. *Lossy* faults
/// ([`KillRecvAfter`](Fault::KillRecvAfter),
/// [`KillQueueAfter`](Fault::KillQueueAfter),
/// [`DuplicateFrame`](Fault::DuplicateFrame),
/// [`CorruptBody`](Fault::CorruptBody)) cost the client its connection
/// — the server must reject the bad input with a typed error, never
/// train on it, and the client recovers through `Resume`. *Latency*
/// faults ([`HoldReplies`](Fault::HoldReplies),
/// [`DelayFrames`](Fault::DelayFrames)) slow a path down without
/// breaking it and must be absorbed with no reconnect at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Hang up the read path after this many post-handshake messages.
    KillRecvAfter(u32),
    /// Hang up while queueing the nth tensor reply.
    KillQueueAfter(u32),
    /// Hold every reply for this many flush calls before releasing it.
    HoldReplies(u32),
    /// Stall the read path: hold every inbound message (handshake
    /// included) for this many polls before delivering. Pure latency —
    /// lock-step tolerates it and no state is lost.
    DelayFrames(u32),
    /// Re-deliver the nth `Gradients` message one poll after the
    /// original. By then the backward pass has consumed its pending
    /// forward, so the server must reject the replay as out-of-order —
    /// a duplicate frame may cost the connection but is never applied
    /// to the optimizer twice.
    DuplicateFrame(u32),
    /// Mangle the frame header of the nth tensor message so decoding
    /// fails with a typed wire error. The server must reject it before
    /// touching any training state: a corrupt body costs the
    /// connection, never the loss curve.
    CorruptBody(u32),
    /// Silently blackhole both directions after the nth post-handshake
    /// message: later inbound messages are dropped, every reply
    /// vanishes, and — unlike the kill faults — **no FIN or error is
    /// ever surfaced** on either side. The connection just goes quiet,
    /// exactly like a network partition or a SIGKILLed peer whose port
    /// lingers. Detection must therefore come from deadline expiry
    /// (the server's `io_timeout` eviction, the client's transport
    /// deadline), never from a clean close.
    Partition(u32),
}

fn plan_for(options: &ChaosOptions, client: ClientId, incarnation: u64) -> Option<Fault> {
    if incarnation > options.max_faulted_incarnations {
        return None;
    }
    let mut rng = seeded_rng(options.seed, &format!("chaos-{client}-{incarnation}"));
    let roll: f64 = rng.gen();
    Some(if roll < 0.22 {
        Fault::KillRecvAfter(rng.gen_range(1..=5))
    } else if roll < 0.44 {
        Fault::KillQueueAfter(rng.gen_range(1..=5))
    } else if roll < 0.58 {
        Fault::HoldReplies(rng.gen_range(1..=options.max_hold_flushes.max(1)))
    } else if roll < 0.72 {
        Fault::DelayFrames(rng.gen_range(1..=3))
    } else if roll < 0.82 {
        Fault::DuplicateFrame(rng.gen_range(1..=4))
    } else if roll < 0.92 {
        Fault::CorruptBody(rng.gen_range(1..=4))
    } else {
        Fault::Partition(rng.gen_range(1..=4))
    })
}

/// An [`EventListener`] whose accepted connections inject scripted
/// faults. Wrap the real listener and run the loop unchanged.
pub struct ChaosListener<L> {
    inner: L,
    options: ChaosOptions,
    incarnations: Arc<Mutex<HashMap<ClientId, u64>>>,
    forced: Option<Fault>,
}

impl<L> ChaosListener<L> {
    /// Wraps a listener with a chaos script.
    pub fn new(inner: L, options: ChaosOptions) -> Self {
        ChaosListener {
            inner,
            options,
            incarnations: Arc::new(Mutex::new(HashMap::new())),
            forced: None,
        }
    }

    /// Wraps a listener that deals every budgeted incarnation exactly
    /// `fault` instead of rolling the plan — how the fault-matrix test
    /// pins each fault kind in isolation. The incarnation budget still
    /// applies, so retrying clients eventually run clean and finish.
    pub fn with_forced_fault(inner: L, options: ChaosOptions, fault: Fault) -> Self {
        ChaosListener {
            inner,
            options,
            incarnations: Arc::new(Mutex::new(HashMap::new())),
            forced: Some(fault),
        }
    }

    /// How many connections each client has opened so far — useful for
    /// asserting a soak actually exercised reconnects.
    pub fn incarnations_of(&self, client: ClientId) -> u64 {
        self.incarnations
            .lock()
            .expect("incarnation lock")
            .get(&client)
            .copied()
            .unwrap_or(0)
    }
}

impl<L: EventListener> EventListener for ChaosListener<L> {
    type Conn = ChaosConn<L::Conn>;

    fn poll_accept(&mut self) -> Result<Option<Self::Conn>, ProtocolError> {
        Ok(self.inner.poll_accept()?.map(|conn| ChaosConn {
            inner: conn,
            options: self.options,
            incarnations: self.incarnations.clone(),
            forced: self.forced,
            fault: None,
            identified: false,
            msgs_seen: 0,
            tensors_seen: 0,
            grads_seen: 0,
            replies_seen: 0,
            held: VecDeque::new(),
            hold_left: 0,
            delayed: VecDeque::new(),
            delay_left: 0,
            dup_pending: None,
            dup_done: false,
            recv_dead: false,
            partitioned: false,
        }))
    }
}

/// An [`EventConn`] that executes one incarnation's fault plan around
/// an inner connection.
pub struct ChaosConn<C> {
    inner: C,
    options: ChaosOptions,
    incarnations: Arc<Mutex<HashMap<ClientId, u64>>>,
    forced: Option<Fault>,
    fault: Option<Fault>,
    identified: bool,
    /// Messages seen after the handshake message.
    msgs_seen: u32,
    /// Tensor messages (`Activations`/`Gradients`) seen so far.
    tensors_seen: u32,
    /// `Gradients` messages seen so far.
    grads_seen: u32,
    /// Tensor replies queued so far.
    replies_seen: u32,
    held: VecDeque<ServerMessage>,
    hold_left: u32,
    /// Inbound messages staged before delivery; non-empty only while a
    /// `DelayFrames` stall is active or within a single poll.
    delayed: VecDeque<ClientMessage>,
    delay_left: u32,
    /// A scripted `DuplicateFrame` replay awaiting the next poll.
    dup_pending: Option<ClientMessage>,
    dup_done: bool,
    recv_dead: bool,
    /// A `Partition` fault has activated: both directions are silently
    /// blackholed from here on — no delivery, no FIN, no error.
    partitioned: bool,
}

impl<C> ChaosConn<C> {
    fn learn_identity(&mut self, client: ClientId) {
        self.identified = true;
        let incarnation = {
            let mut map = self.incarnations.lock().expect("incarnation lock");
            let n = map.entry(client).or_insert(0);
            *n += 1;
            *n
        };
        self.fault = if incarnation > self.options.max_faulted_incarnations {
            None
        } else {
            self.forced
                .or_else(|| plan_for(&self.options, client, incarnation))
        };
        if let Some(Fault::DelayFrames(polls)) = self.fault {
            self.delay_left = polls;
        }
    }

    /// Applies inbound faults to one post-handshake message and stages
    /// the (possibly mangled) result for delivery.
    fn stage_incoming(&mut self, msg: ClientMessage) {
        if self.partitioned {
            // Lost in the void: the message is neither delivered nor
            // acknowledged, and the sender learns nothing.
            return;
        }
        self.msgs_seen += 1;
        if matches!(
            msg,
            ClientMessage::Activations { .. } | ClientMessage::Gradients { .. }
        ) {
            self.tensors_seen += 1;
        }
        match self.fault {
            Some(Fault::DuplicateFrame(n)) => {
                if let ClientMessage::Gradients { .. } = &msg {
                    self.grads_seen += 1;
                    if self.grads_seen == n && !self.dup_done {
                        self.dup_done = true;
                        self.dup_pending = Some(msg.clone());
                    }
                }
                self.delayed.push_back(msg);
            }
            Some(Fault::CorruptBody(n)) if self.tensors_seen == n => {
                self.delayed.push_back(corrupt_frame(msg));
            }
            Some(Fault::Partition(n)) => {
                // The nth message is the last to get through; its
                // reply — and everything after — falls into the void.
                self.delayed.push_back(msg);
                if self.msgs_seen >= n {
                    self.partitioned = true;
                }
            }
            _ => self.delayed.push_back(msg),
        }
    }
}

/// Mangles a tensor frame so decoding fails with a typed wire error.
/// Flipping the first header byte breaks the frame magic — detectable
/// by construction, unlike a bit flip deep in the payload, so the
/// "rejected, never trained on" guarantee is checkable.
fn corrupt_frame(msg: ClientMessage) -> ClientMessage {
    fn mangle(frame: &bytes::Bytes) -> bytes::Bytes {
        let mut raw = frame.to_vec();
        match raw.first_mut() {
            Some(byte) => *byte ^= 0xFF,
            None => raw.push(0xFF),
        }
        bytes::Bytes::from(raw)
    }
    match msg {
        ClientMessage::Activations { client, frame } => ClientMessage::Activations {
            client,
            frame: mangle(&frame),
        },
        ClientMessage::Gradients { client, frame } => ClientMessage::Gradients {
            client,
            frame: mangle(&frame),
        },
        other => other,
    }
}

impl<C: EventConn> EventConn for ChaosConn<C> {
    fn poll_recv(&mut self, out: &mut Vec<ClientMessage>) -> Result<(), ProtocolError> {
        if self.partitioned {
            // A partitioned link is pure silence: no data, no FIN, no
            // error — only the loop's io_timeout deadline can notice.
            return Ok(());
        }
        if self.recv_dead && self.delayed.is_empty() && self.dup_pending.is_none() {
            return Err(ProtocolError::Disconnected);
        }
        let start = out.len();
        // A replay scripted last poll lands before anything new: by now
        // the server has consumed the original, so it must reject this
        // copy as out-of-order.
        if let Some(dup) = self.dup_pending.take() {
            out.push(dup);
        }
        if !self.recv_dead {
            let mut incoming = Vec::new();
            match self.inner.poll_recv(&mut incoming) {
                Ok(()) => {}
                Err(e) => {
                    // Deliver what we already hold first; the hangup
                    // surfaces once the buffers run dry.
                    self.recv_dead = true;
                    if out.len() == start && self.delayed.is_empty() {
                        return Err(e);
                    }
                }
            }
            for msg in incoming.drain(..) {
                if !self.identified {
                    if let ClientMessage::Connect { client, .. }
                    | ClientMessage::Resume { client, .. } = &msg
                    {
                        let client = *client;
                        self.learn_identity(client);
                        self.delayed.push_back(msg);
                        continue;
                    }
                }
                self.stage_incoming(msg);
            }
        }
        // An active DelayFrames stall holds everything staged so far.
        if self.delay_left > 0 {
            self.delay_left -= 1;
            return Ok(());
        }
        out.extend(self.delayed.drain(..));
        if let Some(Fault::KillRecvAfter(n)) = self.fault {
            if self.msgs_seen >= n {
                // Per the EventConn contract, messages already drained
                // this call are delivered; the hangup surfaces on the
                // next poll.
                self.recv_dead = true;
                if out.len() == start {
                    return Err(ProtocolError::Disconnected);
                }
            }
        }
        Ok(())
    }

    fn queue(&mut self, msg: &ServerMessage) -> Result<(), ProtocolError> {
        if self.partitioned {
            // Swallowed, not failed: a blackholed reply (including the
            // best-effort eviction notice) reports success and vanishes.
            return Ok(());
        }
        match self.fault {
            Some(Fault::KillQueueAfter(n)) => {
                // Only tensor replies count: killing a handshake reply
                // after the server committed its side would strand the
                // client by design (see the module docs).
                if matches!(
                    msg,
                    ServerMessage::ServerActivations { .. } | ServerMessage::ServerGradients { .. }
                ) {
                    self.replies_seen += 1;
                    if self.replies_seen >= n {
                        return Err(ProtocolError::Disconnected);
                    }
                }
                self.inner.queue(msg)
            }
            Some(Fault::HoldReplies(hold)) => {
                if self.held.is_empty() {
                    self.hold_left = hold;
                }
                self.held.push_back(msg.clone());
                Ok(())
            }
            _ => self.inner.queue(msg),
        }
    }

    fn flush(&mut self) -> Result<bool, ProtocolError> {
        if self.partitioned {
            return Ok(true);
        }
        if !self.held.is_empty() {
            if self.hold_left > 0 {
                self.hold_left -= 1;
                return Ok(false);
            }
            while let Some(msg) = self.held.pop_front() {
                self.inner.queue(&msg)?;
            }
        }
        self.inner.flush()
    }

    fn has_queued_writes(&self) -> bool {
        if self.partitioned {
            return false;
        }
        !self.held.is_empty() || self.inner.has_queued_writes()
    }

    fn queued_write_bytes(&self) -> u64 {
        if self.partitioned {
            return 0;
        }
        // Held replies count against the write-buffer bound too: a
        // chaos hold is indistinguishable from a stalled consumer.
        let held: u64 = self.held.iter().map(ServerMessage::wire_bytes).sum();
        held + self.inner.queued_write_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use bytes::Bytes;

    /// A canned inner conn: each poll pops the next scripted batch.
    struct ScriptedConn {
        polls: VecDeque<Vec<ClientMessage>>,
        sent: Vec<ServerMessage>,
    }

    impl EventConn for ScriptedConn {
        fn poll_recv(&mut self, out: &mut Vec<ClientMessage>) -> Result<(), ProtocolError> {
            if let Some(batch) = self.polls.pop_front() {
                out.extend(batch);
            }
            Ok(())
        }

        fn queue(&mut self, msg: &ServerMessage) -> Result<(), ProtocolError> {
            self.sent.push(msg.clone());
            Ok(())
        }

        fn flush(&mut self) -> Result<bool, ProtocolError> {
            Ok(true)
        }

        fn has_queued_writes(&self) -> bool {
            false
        }
    }

    /// A post-handshake `ChaosConn` with one pinned fault, skipping
    /// the identity dance so each fault is testable in isolation.
    fn chaos_over(polls: Vec<Vec<ClientMessage>>, fault: Fault) -> ChaosConn<ScriptedConn> {
        ChaosConn {
            inner: ScriptedConn {
                polls: polls.into(),
                sent: Vec::new(),
            },
            options: ChaosOptions::default(),
            incarnations: Arc::new(Mutex::new(HashMap::new())),
            forced: None,
            fault: Some(fault),
            identified: true,
            msgs_seen: 0,
            tensors_seen: 0,
            grads_seen: 0,
            replies_seen: 0,
            held: VecDeque::new(),
            hold_left: 0,
            delayed: VecDeque::new(),
            delay_left: match fault {
                Fault::DelayFrames(polls) => polls,
                _ => 0,
            },
            dup_pending: None,
            dup_done: false,
            recv_dead: false,
            partitioned: false,
        }
    }

    fn grads(frame: Bytes) -> ClientMessage {
        ClientMessage::Gradients {
            client: ClientId(7),
            frame,
        }
    }

    #[test]
    fn delay_frames_stalls_then_delivers_in_order() {
        let first = grads(Bytes::from_static(b"a"));
        let second = grads(Bytes::from_static(b"b"));
        let mut conn = chaos_over(
            vec![vec![first.clone()], vec![second.clone()], vec![]],
            Fault::DelayFrames(2),
        );
        let mut out = Vec::new();
        conn.poll_recv(&mut out).unwrap();
        assert!(out.is_empty(), "first poll is stalled");
        conn.poll_recv(&mut out).unwrap();
        assert!(out.is_empty(), "second poll is stalled");
        conn.poll_recv(&mut out).unwrap();
        assert_eq!(
            out.len(),
            2,
            "the stall releases everything staged, in arrival order"
        );
        assert_eq!(format!("{:?}", out[0]), format!("{first:?}"));
        assert_eq!(format!("{:?}", out[1]), format!("{second:?}"));
    }

    #[test]
    fn duplicate_frame_replays_the_nth_gradients_next_poll() {
        let original = grads(Bytes::from_static(b"g1"));
        let mut conn = chaos_over(
            vec![vec![original.clone()], vec![], vec![]],
            Fault::DuplicateFrame(1),
        );
        let mut out = Vec::new();
        conn.poll_recv(&mut out).unwrap();
        assert_eq!(out.len(), 1, "the original is delivered on time");
        out.clear();
        conn.poll_recv(&mut out).unwrap();
        assert_eq!(out.len(), 1, "the replay lands exactly one poll later");
        assert_eq!(format!("{:?}", out[0]), format!("{original:?}"));
        out.clear();
        conn.poll_recv(&mut out).unwrap();
        assert!(out.is_empty(), "the replay fires once, not every poll");
    }

    #[test]
    fn corrupt_body_breaks_decoding_with_a_typed_error() {
        use menos_net::{decode_tensor_any, encode_tensor};
        use menos_tensor::Tensor;

        let good = encode_tensor(&Tensor::from_vec(vec![1.0, 2.0], [2]));
        let mut conn = chaos_over(
            vec![vec![grads(good.clone()), grads(good.clone())]],
            Fault::CorruptBody(1),
        );
        let mut out = Vec::new();
        conn.poll_recv(&mut out).unwrap();
        assert_eq!(out.len(), 2);
        let ClientMessage::Gradients { frame, .. } = &out[0] else {
            panic!("tensor message expected");
        };
        let err = decode_tensor_any(frame).expect_err("mangled frame must not decode");
        assert!(
            matches!(err, menos_net::WireError::BadMagic(_)),
            "corruption is structurally detectable: {err:?}"
        );
        let ClientMessage::Gradients { frame, .. } = &out[1] else {
            panic!("tensor message expected");
        };
        decode_tensor_any(frame).expect("only the nth tensor is mangled");
    }

    #[test]
    fn the_default_plan_draws_every_fault_kind() {
        let options = ChaosOptions::default();
        let mut seen = [false; 7];
        for id in 0..256 {
            match plan_for(&options, ClientId(id), 1) {
                Some(Fault::KillRecvAfter(_)) => seen[0] = true,
                Some(Fault::KillQueueAfter(_)) => seen[1] = true,
                Some(Fault::HoldReplies(_)) => seen[2] = true,
                Some(Fault::DelayFrames(_)) => seen[3] = true,
                Some(Fault::DuplicateFrame(_)) => seen[4] = true,
                Some(Fault::CorruptBody(_)) => seen[5] = true,
                Some(Fault::Partition(_)) => seen[6] = true,
                None => {}
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "256 first incarnations cover the whole matrix: {seen:?}"
        );
    }

    #[test]
    fn partition_goes_silent_without_a_fin_in_either_direction() {
        let first = grads(Bytes::from_static(b"a"));
        let second = grads(Bytes::from_static(b"b"));
        let third = grads(Bytes::from_static(b"c"));
        let mut conn = chaos_over(
            vec![vec![first.clone()], vec![second.clone()], vec![third]],
            Fault::Partition(2),
        );
        let mut out = Vec::new();
        conn.poll_recv(&mut out).unwrap();
        assert_eq!(out.len(), 1, "messages before the partition flow");
        conn.queue(&ServerMessage::Pong {
            client: ClientId(7),
            seq: 0,
            live_sessions: 0,
            utilization_pct: 0,
        })
        .unwrap();
        assert_eq!(
            conn.inner.sent.len(),
            1,
            "replies before the partition flow"
        );
        out.clear();
        conn.poll_recv(&mut out).unwrap();
        assert_eq!(out.len(), 1, "the nth message is the last delivered");
        assert!(conn.partitioned);
        // From here on: silence, never an error, in both directions.
        for _ in 0..5 {
            out.clear();
            conn.poll_recv(&mut out).expect("no FIN on the read path");
            assert!(out.is_empty(), "nothing is delivered past the partition");
        }
        conn.queue(&ServerMessage::Pong {
            client: ClientId(7),
            seq: 1,
            live_sessions: 0,
            utilization_pct: 0,
        })
        .expect("no error on the write path");
        assert!(conn.flush().expect("flush reports clean"));
        assert_eq!(conn.inner.sent.len(), 1, "the reply fell into the void");
        assert!(!conn.has_queued_writes());
        assert_eq!(conn.queued_write_bytes(), 0);
    }

    #[test]
    fn plans_depend_only_on_seed_client_and_incarnation() {
        let options = ChaosOptions::default();
        for incarnation in 1..=options.max_faulted_incarnations {
            for id in 0..8 {
                let a = plan_for(&options, ClientId(id), incarnation);
                let b = plan_for(&options, ClientId(id), incarnation);
                assert_eq!(format!("{a:?}"), format!("{b:?}"));
                assert!(a.is_some(), "faulted incarnations always draw a fault");
            }
        }
        // Past the budget, incarnations run clean.
        assert!(plan_for(&options, ClientId(0), options.max_faulted_incarnations + 1).is_none());
    }

    #[test]
    fn chaos_seed_comes_from_the_environment() {
        // Set + unset around the read; the var name is test-local
        // enough that parallel tests in this crate do not race it.
        std::env::set_var("MENOS_CHAOS_SEED", "12345");
        let options = ChaosOptions::from_env();
        std::env::remove_var("MENOS_CHAOS_SEED");
        assert_eq!(options.seed, 12345);
        let fallback = ChaosOptions::from_env();
        assert_eq!(fallback.seed, ChaosOptions::default().seed);
    }
}

//! Deterministic chaos injection for the event-driven server path.
//!
//! [`FaultTransport`](crate::FaultTransport) scripts faults into the
//! *blocking* server pump; this module extends the idea to the
//! nonblocking path: [`ChaosListener`] wraps any
//! [`EventListener`](crate::EventListener) and hands the event loop
//! [`ChaosConn`]s that inject scripted faults — hangups on the read
//! path, hangups while queueing replies, and reply delays that force
//! the loop through its partial-write flush machinery.
//!
//! Faults are *scripted, not random at runtime*: each connection
//! learns its client id from the `Connect`/`Resume` message passing
//! through it, counts that client's **incarnation** (connection
//! attempt number), and derives its fault plan from
//! `seeded_rng(seed, "chaos-{client}-{incarnation}")`. The plan
//! therefore depends only on the seed and on how many times that
//! client has connected — not on accept order, sweep timing, or
//! thread interleaving — so a chaos run is reproducible from its seed
//! alone.
//!
//! Faults land only at message boundaries and never corrupt bytes, so
//! a client that survives (via the `Resume` handshake) must produce a
//! loss curve **bit-identical** to a fault-free run — the soak test's
//! core assertion. Kills are budgeted per client
//! ([`ChaosOptions::max_faulted_incarnations`]): after the budget is
//! spent, later incarnations run clean, so retrying clients always
//! finish.
//!
//! One deliberate gap in the fault model: replies to a `Resume`
//! handshake are exempt from queue-kills. Killing the `Resumed` reply
//! after the server has already bumped the session epoch would strand
//! the client with a stale epoch by design — detecting exactly that
//! zombie case is what the epoch is *for* — so the chaos plan only
//! kills tensor-reply queues.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use rand::Rng;

use menos_sim::seeded_rng;

use crate::event_loop::{EventConn, EventListener};
use crate::message::{ClientId, ClientMessage, ServerMessage};
use crate::protocol::ProtocolError;

/// Tuning for a chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosOptions {
    /// Root seed; every per-connection plan derives from it.
    pub seed: u64,
    /// How many of a client's first incarnations may draw a fault.
    /// Later incarnations always run clean, bounding the retries any
    /// client needs to finish.
    pub max_faulted_incarnations: u64,
    /// Longest reply hold, in flush calls, a delay fault may impose.
    pub max_hold_flushes: u32,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 0xC4A05,
            max_faulted_incarnations: 2,
            max_hold_flushes: 3,
        }
    }
}

impl ChaosOptions {
    /// Reads the seed from `MENOS_CHAOS_SEED` (decimal), keeping the
    /// other knobs at their defaults — how CI pins a soak run.
    pub fn from_env() -> Self {
        let mut options = ChaosOptions::default();
        if let Some(seed) = std::env::var("MENOS_CHAOS_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            options.seed = seed;
        }
        options
    }
}

/// One incarnation's scripted fault.
#[derive(Debug, Clone, Copy)]
enum Fault {
    /// Hang up the read path after this many post-handshake messages.
    KillRecvAfter(u32),
    /// Hang up while queueing the nth tensor reply.
    KillQueueAfter(u32),
    /// Hold every reply for this many flush calls before releasing it.
    HoldReplies(u32),
}

fn plan_for(options: &ChaosOptions, client: ClientId, incarnation: u64) -> Option<Fault> {
    if incarnation > options.max_faulted_incarnations {
        return None;
    }
    let mut rng = seeded_rng(options.seed, &format!("chaos-{client}-{incarnation}"));
    let roll: f64 = rng.gen();
    Some(if roll < 0.4 {
        Fault::KillRecvAfter(rng.gen_range(1..=5))
    } else if roll < 0.8 {
        Fault::KillQueueAfter(rng.gen_range(1..=5))
    } else {
        Fault::HoldReplies(rng.gen_range(1..=options.max_hold_flushes.max(1)))
    })
}

/// An [`EventListener`] whose accepted connections inject scripted
/// faults. Wrap the real listener and run the loop unchanged.
pub struct ChaosListener<L> {
    inner: L,
    options: ChaosOptions,
    incarnations: Arc<Mutex<HashMap<ClientId, u64>>>,
}

impl<L> ChaosListener<L> {
    /// Wraps a listener with a chaos script.
    pub fn new(inner: L, options: ChaosOptions) -> Self {
        ChaosListener {
            inner,
            options,
            incarnations: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// How many connections each client has opened so far — useful for
    /// asserting a soak actually exercised reconnects.
    pub fn incarnations_of(&self, client: ClientId) -> u64 {
        self.incarnations
            .lock()
            .expect("incarnation lock")
            .get(&client)
            .copied()
            .unwrap_or(0)
    }
}

impl<L: EventListener> EventListener for ChaosListener<L> {
    type Conn = ChaosConn<L::Conn>;

    fn poll_accept(&mut self) -> Result<Option<Self::Conn>, ProtocolError> {
        Ok(self.inner.poll_accept()?.map(|conn| ChaosConn {
            inner: conn,
            options: self.options,
            incarnations: self.incarnations.clone(),
            fault: None,
            identified: false,
            msgs_seen: 0,
            replies_seen: 0,
            held: VecDeque::new(),
            hold_left: 0,
            recv_dead: false,
        }))
    }
}

/// An [`EventConn`] that executes one incarnation's fault plan around
/// an inner connection.
pub struct ChaosConn<C> {
    inner: C,
    options: ChaosOptions,
    incarnations: Arc<Mutex<HashMap<ClientId, u64>>>,
    fault: Option<Fault>,
    identified: bool,
    /// Messages seen after the handshake message.
    msgs_seen: u32,
    /// Tensor replies queued so far.
    replies_seen: u32,
    held: VecDeque<ServerMessage>,
    hold_left: u32,
    recv_dead: bool,
}

impl<C> ChaosConn<C> {
    fn learn_identity(&mut self, client: ClientId) {
        self.identified = true;
        let incarnation = {
            let mut map = self.incarnations.lock().expect("incarnation lock");
            let n = map.entry(client).or_insert(0);
            *n += 1;
            *n
        };
        self.fault = plan_for(&self.options, client, incarnation);
    }
}

impl<C: EventConn> EventConn for ChaosConn<C> {
    fn poll_recv(&mut self, out: &mut Vec<ClientMessage>) -> Result<(), ProtocolError> {
        if self.recv_dead {
            return Err(ProtocolError::Disconnected);
        }
        let start = out.len();
        self.inner.poll_recv(out)?;
        for msg in &out[start..] {
            if !self.identified {
                if let ClientMessage::Connect { client, .. }
                | ClientMessage::Resume { client, .. } = msg
                {
                    let client = *client;
                    self.learn_identity(client);
                    continue;
                }
            }
            self.msgs_seen += 1;
        }
        if let Some(Fault::KillRecvAfter(n)) = self.fault {
            if self.msgs_seen >= n {
                // Per the EventConn contract, messages already drained
                // this call are delivered; the hangup surfaces on the
                // next poll.
                self.recv_dead = true;
                if out.len() == start {
                    return Err(ProtocolError::Disconnected);
                }
            }
        }
        Ok(())
    }

    fn queue(&mut self, msg: &ServerMessage) -> Result<(), ProtocolError> {
        match self.fault {
            Some(Fault::KillQueueAfter(n)) => {
                // Only tensor replies count: killing a handshake reply
                // after the server committed its side would strand the
                // client by design (see the module docs).
                if matches!(
                    msg,
                    ServerMessage::ServerActivations { .. } | ServerMessage::ServerGradients { .. }
                ) {
                    self.replies_seen += 1;
                    if self.replies_seen >= n {
                        return Err(ProtocolError::Disconnected);
                    }
                }
                self.inner.queue(msg)
            }
            Some(Fault::HoldReplies(hold)) => {
                if self.held.is_empty() {
                    self.hold_left = hold;
                }
                self.held.push_back(msg.clone());
                Ok(())
            }
            _ => self.inner.queue(msg),
        }
    }

    fn flush(&mut self) -> Result<bool, ProtocolError> {
        if !self.held.is_empty() {
            if self.hold_left > 0 {
                self.hold_left -= 1;
                return Ok(false);
            }
            while let Some(msg) = self.held.pop_front() {
                self.inner.queue(&msg)?;
            }
        }
        self.inner.flush()
    }

    fn has_queued_writes(&self) -> bool {
        !self.held.is_empty() || self.inner.has_queued_writes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_depend_only_on_seed_client_and_incarnation() {
        let options = ChaosOptions::default();
        for incarnation in 1..=options.max_faulted_incarnations {
            for id in 0..8 {
                let a = plan_for(&options, ClientId(id), incarnation);
                let b = plan_for(&options, ClientId(id), incarnation);
                assert_eq!(format!("{a:?}"), format!("{b:?}"));
                assert!(a.is_some(), "faulted incarnations always draw a fault");
            }
        }
        // Past the budget, incarnations run clean.
        assert!(plan_for(&options, ClientId(0), options.max_faulted_incarnations + 1).is_none());
    }

    #[test]
    fn chaos_seed_comes_from_the_environment() {
        // Set + unset around the read; the var name is test-local
        // enough that parallel tests in this crate do not race it.
        std::env::set_var("MENOS_CHAOS_SEED", "12345");
        let options = ChaosOptions::from_env();
        std::env::remove_var("MENOS_CHAOS_SEED");
        assert_eq!(options.seed, 12345);
        let fallback = ChaosOptions::from_env();
        assert_eq!(fallback.seed, ChaosOptions::default().seed);
    }
}

//! A fault-injecting server-side [`Transport`]: scripts a sequence of
//! incoming byte frames — valid, truncated, delayed, hostile, or an
//! abrupt hang-up — and records every reply the state machine sends.
//!
//! This exercises the full server stack (codec → [`serve_loop`] →
//! handler) without sockets, so protocol-robustness tests are
//! deterministic and instant.
//!
//! The blocking pump is only half the story: the nonblocking
//! equivalent is [`ChaosListener`](crate::ChaosListener), which wraps
//! an event-loop listener and injects seed-scripted kills and delays
//! into live connections — same philosophy (deterministic faults,
//! typed errors, nothing random at runtime), applied to the
//! [`ServerEventLoop`](crate::ServerEventLoop) path.
//!
//! [`serve_loop`]: crate::protocol::serve_loop

use std::collections::VecDeque;
use std::time::Duration;

use bytes::Bytes;

use menos_net::{encode_frame_header, DEFAULT_MAX_FRAME};

use crate::message::{ClientMessage, ServerMessage};
use crate::protocol::{ProtocolError, Transport, WireMessage};

struct Scripted {
    bytes: Bytes,
    /// Virtual arrival delay, compared against the deadline on recv.
    delay: Duration,
}

/// Scripted server-side transport endpoint
/// (`Tx = ServerMessage`, `Rx = ClientMessage`).
///
/// Push the client's behaviour up front with the `push_*` methods;
/// when the script runs dry, `recv` reports
/// [`ProtocolError::Disconnected`] — an abrupt mid-session hang-up.
pub struct FaultTransport {
    incoming: VecDeque<Scripted>,
    sent: Vec<ServerMessage>,
    deadline: Option<Duration>,
    max_frame: usize,
}

impl Default for FaultTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultTransport {
    /// An empty script with the default frame cap.
    pub fn new() -> Self {
        FaultTransport {
            incoming: VecDeque::new(),
            sent: Vec::new(),
            deadline: None,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }

    /// Lowers the frame cap this endpoint enforces on decode.
    pub fn with_max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame;
        self
    }

    /// Scripts a well-formed message.
    pub fn push_message(&mut self, msg: &ClientMessage) {
        self.push_raw(msg.to_wire());
    }

    /// Scripts a message truncated to its first `keep` bytes.
    pub fn push_truncated(&mut self, msg: &ClientMessage, keep: usize) {
        let full = msg.to_wire();
        self.push_raw(full.slice(..keep.min(full.len())));
    }

    /// Scripts a well-formed message that arrives after `delay` of
    /// virtual time — trips the deadline if one is set.
    pub fn push_delayed(&mut self, msg: &ClientMessage, delay: Duration) {
        self.incoming.push_back(Scripted {
            bytes: msg.to_wire(),
            delay,
        });
    }

    /// Scripts a hostile frame header declaring a `declared`-byte
    /// payload that never follows.
    pub fn push_oversize_header(&mut self, declared: u32) {
        self.push_raw(encode_frame_header(2, 0, declared));
    }

    /// Scripts arbitrary raw bytes as one incoming frame.
    pub fn push_raw(&mut self, bytes: impl Into<Bytes>) {
        self.incoming.push_back(Scripted {
            bytes: bytes.into(),
            delay: Duration::ZERO,
        });
    }

    /// Every reply the server sent, in order.
    pub fn sent(&self) -> &[ServerMessage] {
        &self.sent
    }
}

impl Transport for FaultTransport {
    type Tx = ServerMessage;
    type Rx = ClientMessage;

    fn send(&mut self, msg: &ServerMessage) -> Result<(), ProtocolError> {
        self.sent.push(msg.clone());
        Ok(())
    }

    fn recv(&mut self) -> Result<ClientMessage, ProtocolError> {
        let item = self
            .incoming
            .pop_front()
            .ok_or(ProtocolError::Disconnected)?;
        if let Some(deadline) = self.deadline {
            if item.delay > deadline {
                return Err(ProtocolError::Timeout);
            }
        }
        Ok(ClientMessage::from_wire(&item.bytes, self.max_frame)?)
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), ProtocolError> {
        self.deadline = deadline;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ClientId;
    use menos_net::WireError;

    #[test]
    fn scripted_faults_surface_as_typed_errors() {
        let disconnect = ClientMessage::Disconnect {
            client: ClientId(1),
        };
        let mut t = FaultTransport::new();
        t.push_message(&disconnect);
        t.push_truncated(&disconnect, 5);
        t.push_oversize_header(u32::MAX);
        t.push_delayed(&disconnect, Duration::from_secs(60));

        assert!(matches!(t.recv(), Ok(ClientMessage::Disconnect { .. })));
        assert!(matches!(
            t.recv(),
            Err(ProtocolError::Wire(WireError::Truncated))
        ));
        assert!(matches!(
            t.recv(),
            Err(ProtocolError::Wire(WireError::TooLarge { .. }))
        ));
        // No deadline: the delayed frame arrives eventually.
        assert!(t.recv().is_ok());
        // Script exhausted: abrupt hang-up.
        assert!(matches!(t.recv(), Err(ProtocolError::Disconnected)));
    }

    #[test]
    fn deadline_trips_on_delayed_frames() {
        let disconnect = ClientMessage::Disconnect {
            client: ClientId(1),
        };
        let mut t = FaultTransport::new();
        t.set_deadline(Some(Duration::from_millis(100))).unwrap();
        t.push_delayed(&disconnect, Duration::from_secs(1));
        assert!(matches!(t.recv(), Err(ProtocolError::Timeout)));
    }

    #[test]
    fn replies_are_recorded() {
        let mut t = FaultTransport::new();
        t.send(&ServerMessage::Ready {
            client: ClientId(2),
            codec: menos_net::Codec::F32Raw,
        })
        .unwrap();
        assert_eq!(t.sent().len(), 1);
    }
}

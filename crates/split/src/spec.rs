//! The split specification: where a client cuts the model.

use serde::{Deserialize, Serialize};

use menos_models::ModelConfig;

/// How the model is topologically partitioned between a client and the
/// server (paper Fig. 1).
///
/// The client holds the input section `f_i` (embedding + the first
/// `front_layers` transformer blocks) and the output section `f_o`
/// (final norm + LM head). The server hosts the remaining blocks
/// `f_s = blocks[front_layers ..]`.
///
/// Clients choose the cut on a privacy-efficiency trade-off: deeper
/// cuts expose less to the server but keep more compute local.
///
/// # Examples
///
/// ```
/// use menos_models::ModelConfig;
/// use menos_split::SplitSpec;
///
/// let cfg = ModelConfig::opt_1_3b();
/// let split = SplitSpec::paper();
/// assert_eq!(split.front_layers, 1);
/// assert_eq!(split.server_range(&cfg), 1..24);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SplitSpec {
    /// Number of transformer blocks computed on the client before the
    /// cut.
    pub front_layers: usize,
}

impl SplitSpec {
    /// The paper's configuration: embedding + first block on the
    /// client.
    pub fn paper() -> Self {
        SplitSpec { front_layers: 1 }
    }

    /// Creates a spec cutting after `front_layers` blocks.
    pub fn new(front_layers: usize) -> Self {
        SplitSpec { front_layers }
    }

    /// The block range hosted by the server.
    pub fn server_range(&self, cfg: &ModelConfig) -> std::ops::Range<usize> {
        self.front_layers..cfg.layers
    }

    /// The block range hosted by the client (front section).
    pub fn client_range(&self) -> std::ops::Range<usize> {
        0..self.front_layers
    }

    /// Validates against a model configuration.
    ///
    /// # Errors
    ///
    /// Fails if the cut leaves the server without blocks.
    pub fn validate(&self, cfg: &ModelConfig) -> Result<(), String> {
        if self.front_layers >= cfg.layers {
            return Err(format!(
                "front_layers {} leaves no server blocks (model has {})",
                self.front_layers, cfg.layers
            ));
        }
        Ok(())
    }
}

impl Default for SplitSpec {
    fn default() -> Self {
        SplitSpec::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_ranges() {
        let cfg = ModelConfig::llama2_7b();
        let s = SplitSpec::paper();
        assert_eq!(s.client_range(), 0..1);
        assert_eq!(s.server_range(&cfg), 1..32);
        s.validate(&cfg).unwrap();
    }

    #[test]
    fn deeper_cuts() {
        let cfg = ModelConfig::tiny_opt(10); // 4 layers
        let s = SplitSpec::new(3);
        s.validate(&cfg).unwrap();
        assert_eq!(s.server_range(&cfg), 3..4);
        assert!(SplitSpec::new(4).validate(&cfg).is_err());
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(SplitSpec::default(), SplitSpec::paper());
    }
}

//! The unified message codec: every [`ClientMessage`] and
//! [`ServerMessage`] variant has exactly one byte representation,
//! shared by all transports (in-memory channels, the simulated WAN,
//! and real sockets).
//!
//! A message is a `menos-net` protocol frame: the fixed 18-byte header
//! carries the message kind and the client id; the payload carries the
//! variant's body — an encoded tensor for activation/gradient
//! messages, the fine-tuning configuration for `Connect`, and nothing
//! for the remaining control messages.

use bytes::Bytes;

use menos_adapters::{AdapterKind, FineTuneConfig, OptimKind};
use menos_models::{AdapterTarget, LoraSpec};
use menos_net::{
    decode_frame, decode_frame_parts, encode_frame, encode_frame_header, Codec, WireError,
};

use crate::message::{ClientId, ClientMessage, EvictionCode, ServerMessage};
use crate::spec::SplitSpec;

pub(crate) const KIND_CONNECT: u8 = 1;
pub(crate) const KIND_ACTIVATIONS: u8 = 2;
pub(crate) const KIND_GRADIENTS: u8 = 3;
pub(crate) const KIND_DISCONNECT: u8 = 4;
pub(crate) const KIND_RESUME: u8 = 5;
pub(crate) const KIND_PING: u8 = 6;
pub(crate) const KIND_IMPORT_SESSION: u8 = 7;
pub(crate) const KIND_READY: u8 = 17;
pub(crate) const KIND_SERVER_ACTIVATIONS: u8 = 18;
pub(crate) const KIND_SERVER_GRADIENTS: u8 = 19;
pub(crate) const KIND_RESUMED: u8 = 20;
pub(crate) const KIND_EVICTED: u8 = 21;
pub(crate) const KIND_BUSY: u8 = 22;
pub(crate) const KIND_REDIRECT: u8 = 23;
pub(crate) const KIND_PONG: u8 = 24;
pub(crate) const KIND_IMPORTED: u8 = 25;

/// Every message kind of wire-protocol v1 — the single source of
/// truth `PROTOCOL.md` is checked against. Client→server kinds live
/// in `1..=16`, server→client kinds in `17..=32`; kinds are
/// directional, so a client kind in a server frame is rejected as
/// [`WireError::UnknownKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MessageKind {
    /// Client requests a session, carrying its fine-tuning config.
    Connect = KIND_CONNECT,
    /// Cut-layer activations `x_c` (client→server forward input).
    Activations = KIND_ACTIVATIONS,
    /// Cut-layer gradients `g_c` (client→server backward input).
    Gradients = KIND_GRADIENTS,
    /// Client ends its session; the server reclaims its state.
    Disconnect = KIND_DISCONNECT,
    /// Client re-attaches to a quarantined session (v1.1, allocated
    /// from the reserved client→server range).
    Resume = KIND_RESUME,
    /// Liveness probe from a fleet health checker (v1.4).
    Ping = KIND_PING,
    /// A coordinator re-homes an exported session blob (v1.4).
    ImportSession = KIND_IMPORT_SESSION,
    /// Server accepted the connection; the session is live.
    Ready = KIND_READY,
    /// Server-side forward output `x_s` (server→client).
    ServerActivations = KIND_SERVER_ACTIVATIONS,
    /// Server-side gradients `g_s` (server→client).
    ServerGradients = KIND_SERVER_GRADIENTS,
    /// Server accepted a resume; the session continues (v1.1).
    Resumed = KIND_RESUMED,
    /// Server closed the session, with a close code (v1.1).
    Evicted = KIND_EVICTED,
    /// Server shed the connection at admission, with a retry hint
    /// (v1.3, allocated from the reserved server→client range).
    Busy = KIND_BUSY,
    /// Coordinator steers the client to its session's server (v1.4).
    Redirect = KIND_REDIRECT,
    /// Heartbeat reply carrying coarse load (v1.4).
    Pong = KIND_PONG,
    /// Server acknowledged a session import (v1.4).
    Imported = KIND_IMPORTED,
}

impl MessageKind {
    /// All kinds of protocol v1 (including the v1.1 session-lifecycle,
    /// v1.3 overload, and v1.4 fleet additions), in wire-code order.
    pub const ALL: [MessageKind; 16] = [
        MessageKind::Connect,
        MessageKind::Activations,
        MessageKind::Gradients,
        MessageKind::Disconnect,
        MessageKind::Resume,
        MessageKind::Ping,
        MessageKind::ImportSession,
        MessageKind::Ready,
        MessageKind::ServerActivations,
        MessageKind::ServerGradients,
        MessageKind::Resumed,
        MessageKind::Evicted,
        MessageKind::Busy,
        MessageKind::Redirect,
        MessageKind::Pong,
        MessageKind::Imported,
    ];

    /// The kind byte carried in the frame header.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The kind's name as written in `PROTOCOL.md`.
    pub fn name(self) -> &'static str {
        match self {
            MessageKind::Connect => "Connect",
            MessageKind::Activations => "Activations",
            MessageKind::Gradients => "Gradients",
            MessageKind::Disconnect => "Disconnect",
            MessageKind::Resume => "Resume",
            MessageKind::Ping => "Ping",
            MessageKind::ImportSession => "ImportSession",
            MessageKind::Ready => "Ready",
            MessageKind::ServerActivations => "ServerActivations",
            MessageKind::ServerGradients => "ServerGradients",
            MessageKind::Resumed => "Resumed",
            MessageKind::Evicted => "Evicted",
            MessageKind::Busy => "Busy",
            MessageKind::Redirect => "Redirect",
            MessageKind::Pong => "Pong",
            MessageKind::Imported => "Imported",
        }
    }

    /// True for client→server kinds.
    pub fn client_to_server(self) -> bool {
        self.code() <= 16
    }
}

/// Serializes a client→server message to its wire frame.
pub fn encode_client_message(msg: &ClientMessage) -> Bytes {
    match msg {
        ClientMessage::Connect {
            client,
            ft,
            split,
            epoch,
            codecs,
        } => encode_frame(
            KIND_CONNECT,
            client.0,
            &encode_config_v12(ft, *split, *epoch, *codecs),
        ),
        ClientMessage::Resume {
            client,
            epoch,
            last_step,
        } => {
            let mut body = Vec::with_capacity(16);
            body.extend(epoch.to_le_bytes());
            body.extend(last_step.to_le_bytes());
            encode_frame(KIND_RESUME, client.0, &body)
        }
        ClientMessage::Activations { client, frame } => {
            encode_frame(KIND_ACTIVATIONS, client.0, frame)
        }
        ClientMessage::Gradients { client, frame } => encode_frame(KIND_GRADIENTS, client.0, frame),
        ClientMessage::Disconnect { client } => encode_frame(KIND_DISCONNECT, client.0, &[]),
        ClientMessage::Ping { client, seq } => {
            encode_frame(KIND_PING, client.0, &seq.to_le_bytes())
        }
        ClientMessage::ImportSession { client, blob } => {
            encode_frame(KIND_IMPORT_SESSION, client.0, blob)
        }
    }
}

/// Serializes a client→server message as `(header, body)` buffer
/// parts. Concatenated they are byte-identical to
/// [`encode_client_message`], but a tensor-carrying message shares its
/// already-encoded frame by reference instead of copying it into a
/// contiguous buffer.
pub fn client_message_parts(msg: &ClientMessage) -> (Bytes, Bytes) {
    let (kind, client, body) = match msg {
        ClientMessage::Connect {
            client,
            ft,
            split,
            epoch,
            codecs,
        } => (
            KIND_CONNECT,
            client,
            Bytes::from(encode_config_v12(ft, *split, *epoch, *codecs)),
        ),
        ClientMessage::Resume {
            client,
            epoch,
            last_step,
        } => {
            let mut body = Vec::with_capacity(16);
            body.extend(epoch.to_le_bytes());
            body.extend(last_step.to_le_bytes());
            (KIND_RESUME, client, Bytes::from(body))
        }
        ClientMessage::Activations { client, frame } => (KIND_ACTIVATIONS, client, frame.clone()),
        ClientMessage::Gradients { client, frame } => (KIND_GRADIENTS, client, frame.clone()),
        ClientMessage::Disconnect { client } => (KIND_DISCONNECT, client, Bytes::new()),
        ClientMessage::Ping { client, seq } => {
            (KIND_PING, client, Bytes::from(seq.to_le_bytes().to_vec()))
        }
        ClientMessage::ImportSession { client, blob } => {
            (KIND_IMPORT_SESSION, client, blob.clone())
        }
    };
    (encode_frame_header(kind, client.0, body.len() as u32), body)
}

/// Decodes the body of a client→server message whose frame header has
/// already been parsed and validated.
fn client_message_from_kind(
    kind: u8,
    client: u64,
    payload: Bytes,
) -> Result<ClientMessage, WireError> {
    let client = ClientId(client);
    match kind {
        KIND_CONNECT => {
            let (ft, split, epoch, codecs) = decode_config_v12(&payload)?;
            Ok(ClientMessage::Connect {
                client,
                ft,
                split,
                epoch,
                codecs,
            })
        }
        KIND_RESUME => {
            let mut c = Cursor {
                buf: &payload,
                pos: 0,
            };
            let epoch = c.u64()?;
            let last_step = c.u64()?;
            c.finish()?;
            Ok(ClientMessage::Resume {
                client,
                epoch,
                last_step,
            })
        }
        KIND_ACTIVATIONS => Ok(ClientMessage::Activations {
            client,
            frame: payload,
        }),
        KIND_GRADIENTS => Ok(ClientMessage::Gradients {
            client,
            frame: payload,
        }),
        KIND_DISCONNECT => {
            expect_empty(&payload)?;
            Ok(ClientMessage::Disconnect { client })
        }
        KIND_PING => {
            let mut c = Cursor {
                buf: &payload,
                pos: 0,
            };
            let seq = c.u64()?;
            c.finish()?;
            Ok(ClientMessage::Ping { client, seq })
        }
        KIND_IMPORT_SESSION => {
            if payload.is_empty() {
                return Err(WireError::Malformed(
                    "ImportSession body must carry a session blob".into(),
                ));
            }
            Ok(ClientMessage::ImportSession {
                client,
                blob: payload,
            })
        }
        other => Err(WireError::UnknownKind(other)),
    }
}

/// Deserializes a client→server message from its wire frame.
///
/// # Errors
///
/// Rejects truncation at any prefix, bad magic/version, payloads above
/// `max_frame` bytes, unknown message kinds, and malformed `Connect`
/// bodies.
pub fn decode_client_message(bytes: &Bytes, max_frame: usize) -> Result<ClientMessage, WireError> {
    let (kind, client, payload) = decode_frame(bytes, max_frame)?;
    client_message_from_kind(kind, client, payload)
}

/// Deserializes a client→server message delivered as separate header
/// and body buffers, sharing the body by reference (no copy).
///
/// # Errors
///
/// Same taxonomy as [`decode_client_message`].
pub fn decode_client_message_parts(
    header: &[u8],
    body: &Bytes,
    max_frame: usize,
) -> Result<ClientMessage, WireError> {
    let (kind, client, payload) = decode_frame_parts(header, body, max_frame)?;
    client_message_from_kind(kind, client, payload)
}

/// Serializes a server→client message to its wire frame.
pub fn encode_server_message(msg: &ServerMessage) -> Bytes {
    match msg {
        ServerMessage::Ready { client, codec } => {
            encode_frame(KIND_READY, client.0, &ready_body(*codec))
        }
        ServerMessage::ServerActivations { client, frame } => {
            encode_frame(KIND_SERVER_ACTIVATIONS, client.0, frame)
        }
        ServerMessage::ServerGradients { client, frame } => {
            encode_frame(KIND_SERVER_GRADIENTS, client.0, frame)
        }
        ServerMessage::Resumed {
            client,
            epoch,
            server_step,
            replay,
        } => {
            let mut body = Vec::with_capacity(16 + replay.len());
            body.extend(epoch.to_le_bytes());
            body.extend(server_step.to_le_bytes());
            body.extend_from_slice(replay);
            encode_frame(KIND_RESUMED, client.0, &body)
        }
        ServerMessage::Evicted { client, code } => {
            encode_frame(KIND_EVICTED, client.0, &[code.code()])
        }
        ServerMessage::Busy {
            client,
            retry_after_ms,
        } => encode_frame(KIND_BUSY, client.0, &retry_after_ms.to_le_bytes()),
        ServerMessage::Redirect {
            client,
            addr,
            retry_after_ms,
        } => encode_frame(
            KIND_REDIRECT,
            client.0,
            &redirect_body(addr, *retry_after_ms),
        ),
        ServerMessage::Pong {
            client,
            seq,
            live_sessions,
            utilization_pct,
        } => encode_frame(
            KIND_PONG,
            client.0,
            &pong_body(*seq, *live_sessions, *utilization_pct),
        ),
        ServerMessage::Imported { client, epoch } => {
            encode_frame(KIND_IMPORTED, client.0, &epoch.to_le_bytes())
        }
    }
}

/// Serializes a server→client message as `(header, body)` buffer
/// parts: the counterpart of [`client_message_parts`]. Tensor replies
/// share their encoded frame by reference — the step-loop reply path
/// never copies the tensor body again after [`menos_net::encode_tensor`].
pub fn server_message_parts(msg: &ServerMessage) -> (Bytes, Bytes) {
    let (kind, client, body) = match msg {
        ServerMessage::Ready { client, codec } => {
            (KIND_READY, client, Bytes::from(ready_body(*codec)))
        }
        ServerMessage::ServerActivations { client, frame } => {
            (KIND_SERVER_ACTIVATIONS, client, frame.clone())
        }
        ServerMessage::ServerGradients { client, frame } => {
            (KIND_SERVER_GRADIENTS, client, frame.clone())
        }
        ServerMessage::Resumed {
            client,
            epoch,
            server_step,
            replay,
        } => {
            let mut body = Vec::with_capacity(16 + replay.len());
            body.extend(epoch.to_le_bytes());
            body.extend(server_step.to_le_bytes());
            body.extend_from_slice(replay);
            (KIND_RESUMED, client, Bytes::from(body))
        }
        ServerMessage::Evicted { client, code } => {
            (KIND_EVICTED, client, Bytes::from(vec![code.code()]))
        }
        ServerMessage::Busy {
            client,
            retry_after_ms,
        } => (
            KIND_BUSY,
            client,
            Bytes::from(retry_after_ms.to_le_bytes().to_vec()),
        ),
        ServerMessage::Redirect {
            client,
            addr,
            retry_after_ms,
        } => (
            KIND_REDIRECT,
            client,
            Bytes::from(redirect_body(addr, *retry_after_ms)),
        ),
        ServerMessage::Pong {
            client,
            seq,
            live_sessions,
            utilization_pct,
        } => (
            KIND_PONG,
            client,
            Bytes::from(pong_body(*seq, *live_sessions, *utilization_pct)),
        ),
        ServerMessage::Imported { client, epoch } => (
            KIND_IMPORTED,
            client,
            Bytes::from(epoch.to_le_bytes().to_vec()),
        ),
    };
    (encode_frame_header(kind, client.0, body.len() as u32), body)
}

/// Decodes the body of a server→client message whose frame header has
/// already been parsed and validated.
fn server_message_from_kind(
    kind: u8,
    client: u64,
    payload: Bytes,
) -> Result<ServerMessage, WireError> {
    let client = ClientId(client);
    match kind {
        KIND_READY => {
            // v1.2 (§7): `Ready` may carry exactly one appended byte —
            // the negotiated codec tag. An empty body is the v1.1
            // encoding and means the raw baseline, so un-upgraded
            // exchanges stay byte-identical. The raw tag must use the
            // empty encoding (one representation per message).
            let codec = match payload.len() {
                0 => Codec::F32Raw,
                1 => match Codec::from_tag(payload[0]) {
                    Some(c) if c != Codec::F32Raw => c,
                    _ => {
                        return Err(WireError::Malformed(format!(
                            "bad Ready codec tag {}",
                            payload[0]
                        )))
                    }
                },
                n => {
                    return Err(WireError::Malformed(format!(
                        "Ready body must be empty or 1 codec byte, got {n}"
                    )))
                }
            };
            Ok(ServerMessage::Ready { client, codec })
        }
        KIND_SERVER_ACTIVATIONS => Ok(ServerMessage::ServerActivations {
            client,
            frame: payload,
        }),
        KIND_SERVER_GRADIENTS => Ok(ServerMessage::ServerGradients {
            client,
            frame: payload,
        }),
        KIND_RESUMED => {
            let mut c = Cursor {
                buf: &payload,
                pos: 0,
            };
            let epoch = c.u64()?;
            let server_step = c.u64()?;
            Ok(ServerMessage::Resumed {
                client,
                epoch,
                server_step,
                replay: payload.slice(16..),
            })
        }
        KIND_EVICTED => {
            if payload.len() != 1 {
                return Err(WireError::Malformed(format!(
                    "Evicted body must be 1 close-code byte, got {}",
                    payload.len()
                )));
            }
            let code = EvictionCode::from_code(payload[0]).ok_or_else(|| {
                WireError::Malformed(format!("unknown eviction close code {}", payload[0]))
            })?;
            Ok(ServerMessage::Evicted { client, code })
        }
        KIND_BUSY => {
            let mut c = Cursor {
                buf: &payload,
                pos: 0,
            };
            let retry_after_ms = c.u64()?;
            c.finish()?;
            Ok(ServerMessage::Busy {
                client,
                retry_after_ms,
            })
        }
        KIND_REDIRECT => {
            let mut c = Cursor {
                buf: &payload,
                pos: 0,
            };
            let retry_after_ms = c.u64()?;
            let addr_bytes = &payload[c.pos..];
            if addr_bytes.is_empty() {
                return Err(WireError::Malformed(
                    "Redirect body must carry a non-empty address".into(),
                ));
            }
            let addr = std::str::from_utf8(addr_bytes)
                .map_err(|_| WireError::Malformed("Redirect address is not UTF-8".into()))?
                .to_string();
            Ok(ServerMessage::Redirect {
                client,
                addr,
                retry_after_ms,
            })
        }
        KIND_PONG => {
            let mut c = Cursor {
                buf: &payload,
                pos: 0,
            };
            let seq = c.u64()?;
            let live_sessions = c.u64()?;
            let utilization_pct = c.u64()?;
            c.finish()?;
            Ok(ServerMessage::Pong {
                client,
                seq,
                live_sessions,
                utilization_pct,
            })
        }
        KIND_IMPORTED => {
            let mut c = Cursor {
                buf: &payload,
                pos: 0,
            };
            let epoch = c.u64()?;
            c.finish()?;
            Ok(ServerMessage::Imported { client, epoch })
        }
        other => Err(WireError::UnknownKind(other)),
    }
}

/// Deserializes a server→client message from its wire frame.
///
/// # Errors
///
/// Same taxonomy as [`decode_client_message`].
pub fn decode_server_message(bytes: &Bytes, max_frame: usize) -> Result<ServerMessage, WireError> {
    let (kind, client, payload) = decode_frame(bytes, max_frame)?;
    server_message_from_kind(kind, client, payload)
}

/// Deserializes a server→client message delivered as separate header
/// and body buffers, sharing the body by reference (no copy).
///
/// # Errors
///
/// Same taxonomy as [`decode_client_message`].
pub fn decode_server_message_parts(
    header: &[u8],
    body: &Bytes,
    max_frame: usize,
) -> Result<ServerMessage, WireError> {
    let (kind, client, payload) = decode_frame_parts(header, body, max_frame)?;
    server_message_from_kind(kind, client, payload)
}

/// The `Ready` payload for a negotiated codec: empty for the raw
/// baseline (the v1.1 encoding, kept byte-identical), one tag byte
/// otherwise.
fn ready_body(codec: Codec) -> Vec<u8> {
    match codec {
        Codec::F32Raw => Vec::new(),
        c => vec![c.tag()],
    }
}

/// The `Redirect` payload (§9.2): the retry hint followed by the
/// target address as UTF-8 (non-empty by construction; the decoder
/// rejects empty or non-UTF-8 addresses as malformed).
fn redirect_body(addr: &str, retry_after_ms: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(8 + addr.len());
    body.extend(retry_after_ms.to_le_bytes());
    body.extend_from_slice(addr.as_bytes());
    body
}

/// The `Pong` payload (§9.3): echoed sequence number, live-session
/// count, and pool utilization percent — 24 fixed bytes.
fn pong_body(seq: u64, live_sessions: u64, utilization_pct: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(24);
    body.extend(seq.to_le_bytes());
    body.extend(live_sessions.to_le_bytes());
    body.extend(utilization_pct.to_le_bytes());
    body
}

fn expect_empty(payload: &Bytes) -> Result<(), WireError> {
    if payload.is_empty() {
        Ok(())
    } else {
        Err(WireError::Malformed(format!(
            "{} payload bytes on a control message",
            payload.len()
        )))
    }
}

// ----------------------------------------------------------------------
// Connect body: the fine-tuning configuration (self-contained binary
// layout; serde derives exist on these types but no wire format crate
// is in the dependency set).
// ----------------------------------------------------------------------

pub(crate) fn encode_config(ft: &FineTuneConfig, split: SplitSpec, epoch: u64) -> Vec<u8> {
    let mut out = Vec::new();
    match &ft.adapter {
        AdapterKind::Lora { spec, targets } => {
            out.push(0u8);
            out.extend((spec.rank as u64).to_le_bytes());
            out.extend(spec.alpha.to_le_bytes());
            out.extend((spec.targets_per_block as u64).to_le_bytes());
            out.push(targets.len() as u8);
            for t in targets {
                out.push(match t {
                    AdapterTarget::Q => 0,
                    AdapterTarget::K => 1,
                    AdapterTarget::V => 2,
                    AdapterTarget::O => 3,
                    AdapterTarget::MlpUp => 4,
                    AdapterTarget::MlpDown => 5,
                });
            }
        }
        AdapterKind::Prefix { len } => {
            out.push(1u8);
            out.extend((*len as u64).to_le_bytes());
        }
    }
    match ft.optimizer {
        OptimKind::Adam { lr } => {
            out.push(0u8);
            out.extend(lr.to_le_bytes());
        }
        OptimKind::Sgd { lr, momentum } => {
            out.push(1u8);
            out.extend(lr.to_le_bytes());
            out.extend(momentum.to_le_bytes());
        }
    }
    out.extend((ft.batch_size as u64).to_le_bytes());
    out.extend((ft.seq_len as u64).to_le_bytes());
    out.extend((ft.grad_accumulation as u64).to_le_bytes());
    out.extend((split.front_layers as u64).to_le_bytes());
    // v1.1: the session epoch rides as an appended field, per the §5
    // versioning policy (v1.0 decoders never read this far; v1.0
    // encoders omit it and decode below as epoch 0).
    out.extend(epoch.to_le_bytes());
    out
}

/// [`encode_config`] plus the v1.2 appended codec feature-flag mask
/// (§7). A zero mask is omitted, which keeps a compression-unaware
/// client's Connect body byte-identical to v1.1.
pub(crate) fn encode_config_v12(
    ft: &FineTuneConfig,
    split: SplitSpec,
    epoch: u64,
    codecs: u64,
) -> Vec<u8> {
    let mut out = encode_config(ft, split, epoch);
    if codecs != 0 {
        out.extend(codecs.to_le_bytes());
    }
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, WireError> {
        let v = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        let end = self.pos + 8;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }
    fn f32(&mut self) -> Result<f32, WireError> {
        let end = self.pos + 4;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(f32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }
    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
    fn finish(&self) -> Result<(), WireError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing bytes after body",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Decodes a Connect config body without the v1.2 codec mask — what
/// session snapshots store (compression state is serialized separately
/// from the config).
pub(crate) fn decode_config(buf: &[u8]) -> Result<(FineTuneConfig, SplitSpec, u64), WireError> {
    decode_config_v12(buf).map(|(ft, split, epoch, _)| (ft, split, epoch))
}

pub(crate) fn decode_config_v12(
    buf: &[u8],
) -> Result<(FineTuneConfig, SplitSpec, u64, u64), WireError> {
    let mut c = Cursor { buf, pos: 0 };
    let adapter = match c.u8()? {
        0 => {
            let rank = c.u64()? as usize;
            let alpha = c.f32()?;
            let targets_per_block = c.u64()? as usize;
            let n = c.u8()? as usize;
            let mut targets = Vec::with_capacity(n);
            for _ in 0..n {
                targets.push(match c.u8()? {
                    0 => AdapterTarget::Q,
                    1 => AdapterTarget::K,
                    2 => AdapterTarget::V,
                    3 => AdapterTarget::O,
                    4 => AdapterTarget::MlpUp,
                    5 => AdapterTarget::MlpDown,
                    x => return Err(WireError::Malformed(format!("bad adapter target {x}"))),
                });
            }
            AdapterKind::Lora {
                spec: LoraSpec {
                    rank,
                    alpha,
                    targets_per_block,
                },
                targets,
            }
        }
        1 => AdapterKind::Prefix {
            len: c.u64()? as usize,
        },
        x => return Err(WireError::Malformed(format!("bad adapter kind {x}"))),
    };
    let optimizer = match c.u8()? {
        0 => OptimKind::Adam { lr: c.f32()? },
        1 => OptimKind::Sgd {
            lr: c.f32()?,
            momentum: c.f32()?,
        },
        x => return Err(WireError::Malformed(format!("bad optimizer kind {x}"))),
    };
    let batch_size = c.u64()? as usize;
    let seq_len = c.u64()? as usize;
    let grad_accumulation = c.u64()? as usize;
    let front_layers = c.u64()? as usize;
    // Appended fields are ordered and decoded tolerantly, per the §5
    // versioning policy: a v1.0 body ends right here (epoch 0 ⇒
    // "pre-lifecycle peer"), a v1.1 body after the epoch (codec mask
    // 0 ⇒ raw-only peer, the §7 fallback rule). A *partial* appended
    // field is still malformed — fields are all-or-nothing.
    let epoch = if c.at_end() { 0 } else { c.u64()? };
    let codecs = if c.at_end() { 0 } else { c.u64()? };
    c.finish()?;
    Ok((
        FineTuneConfig {
            adapter,
            optimizer,
            batch_size,
            seq_len,
            grad_accumulation,
        },
        SplitSpec::new(front_layers),
        epoch,
        codecs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use menos_models::ModelConfig;
    use menos_net::{encode_tensor, DEFAULT_MAX_FRAME};
    use menos_tensor::Tensor;

    #[test]
    fn config_round_trip() {
        let cfg = ModelConfig::tiny_opt(10);
        let ft = FineTuneConfig::paper(&cfg);
        let split = SplitSpec::new(2);
        let (ft2, split2, epoch2) = decode_config(&encode_config(&ft, split, 3)).unwrap();
        assert_eq!(ft, ft2);
        assert_eq!(split, split2);
        assert_eq!(epoch2, 3);

        let ft = FineTuneConfig {
            adapter: AdapterKind::Prefix { len: 6 },
            optimizer: OptimKind::Sgd {
                lr: 0.1,
                momentum: 0.5,
            },
            batch_size: 3,
            seq_len: 17,
            grad_accumulation: 4,
        };
        let (ft2, _, _) = decode_config(&encode_config(&ft, split, 1)).unwrap();
        assert_eq!(ft, ft2);
    }

    /// §5 versioning: the epoch is an appended Connect-body field, so a
    /// v1.0 body (without it) must still decode — as epoch 0.
    #[test]
    fn v1_0_connect_body_without_epoch_still_decodes() {
        let cfg = ModelConfig::tiny_opt(10);
        let ft = FineTuneConfig::paper(&cfg);
        let split = SplitSpec::new(2);
        let mut body = encode_config(&ft, split, 7);
        body.truncate(body.len() - 8); // strip the appended epoch — a v1.0 body
        let (ft2, split2, epoch) = decode_config(&body).unwrap();
        assert_eq!(ft, ft2);
        assert_eq!(split, split2);
        assert_eq!(epoch, 0, "missing epoch decodes as 0");
        // A partially present epoch is still malformed.
        body.extend_from_slice(&[1, 2, 3]);
        assert!(decode_config(&body).is_err());
    }

    #[test]
    fn config_decode_rejects_garbage() {
        assert!(decode_config(&[]).is_err());
        assert!(decode_config(&[9, 0, 0]).is_err());
    }

    #[test]
    fn all_client_variants_round_trip() {
        let cfg = ModelConfig::tiny_opt(10);
        let tensor_frame = encode_tensor(&Tensor::from_vec(vec![1.0, -2.0, 0.5], [3]));
        let msgs = [
            ClientMessage::Connect {
                client: ClientId(3),
                ft: FineTuneConfig::paper(&cfg),
                split: SplitSpec::paper(),
                epoch: 1,
                codecs: 0,
            },
            ClientMessage::Connect {
                client: ClientId(3),
                ft: FineTuneConfig::paper(&cfg),
                split: SplitSpec::paper(),
                epoch: 2,
                codecs: Codec::F16.flag() | Codec::TopK8.flag(),
            },
            ClientMessage::Resume {
                client: ClientId(3),
                epoch: 2,
                last_step: 40,
            },
            ClientMessage::Activations {
                client: ClientId(4),
                frame: tensor_frame.clone(),
            },
            ClientMessage::Gradients {
                client: ClientId(5),
                frame: tensor_frame,
            },
            ClientMessage::Disconnect {
                client: ClientId(6),
            },
            ClientMessage::Ping {
                client: ClientId(7),
                seq: 42,
            },
            ClientMessage::ImportSession {
                client: ClientId(8),
                blob: Bytes::from(vec![1u8, 2, 3, 4]),
            },
        ];
        for msg in msgs {
            let bytes = encode_client_message(&msg);
            let back = decode_client_message(&bytes, DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn all_server_variants_round_trip() {
        let tensor_frame = encode_tensor(&Tensor::zeros([2, 2]));
        let msgs = [
            ServerMessage::Ready {
                client: ClientId(1),
                codec: Codec::F32Raw,
            },
            ServerMessage::Ready {
                client: ClientId(1),
                codec: Codec::BF16,
            },
            ServerMessage::ServerActivations {
                client: ClientId(2),
                frame: tensor_frame.clone(),
            },
            ServerMessage::ServerGradients {
                client: ClientId(3),
                frame: tensor_frame.clone(),
            },
            ServerMessage::Resumed {
                client: ClientId(4),
                epoch: 3,
                server_step: 41,
                replay: Bytes::new(),
            },
            ServerMessage::Resumed {
                client: ClientId(4),
                epoch: 3,
                server_step: 41,
                // An embedded replay is a full encoded frame.
                replay: encode_server_message(&ServerMessage::ServerGradients {
                    client: ClientId(4),
                    frame: tensor_frame,
                }),
            },
            ServerMessage::Evicted {
                client: ClientId(5),
                code: EvictionCode::IdleExpired,
            },
            ServerMessage::Busy {
                client: ClientId(6),
                retry_after_ms: 250,
            },
            ServerMessage::Redirect {
                client: ClientId(7),
                addr: "10.0.0.3:4400".into(),
                retry_after_ms: 15,
            },
            ServerMessage::Pong {
                client: ClientId(8),
                seq: 42,
                live_sessions: 3,
                utilization_pct: 87,
            },
            ServerMessage::Imported {
                client: ClientId(9),
                epoch: 4,
            },
        ];
        for msg in msgs {
            let bytes = encode_server_message(&msg);
            let back = decode_server_message(&bytes, DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn lifecycle_bodies_reject_garbage() {
        // Resume body must be exactly 16 bytes.
        let frame = menos_net::encode_frame(KIND_RESUME, 0, &[1, 2, 3]);
        assert!(decode_client_message(&frame, DEFAULT_MAX_FRAME).is_err());
        let frame = menos_net::encode_frame(KIND_RESUME, 0, &[0; 24]);
        assert!(decode_client_message(&frame, DEFAULT_MAX_FRAME).is_err());
        // Resumed body needs at least epoch + server_step.
        let frame = menos_net::encode_frame(KIND_RESUMED, 0, &[0; 15]);
        assert!(decode_server_message(&frame, DEFAULT_MAX_FRAME).is_err());
        // Evicted body must be one known close-code byte.
        let frame = menos_net::encode_frame(KIND_EVICTED, 0, &[]);
        assert!(decode_server_message(&frame, DEFAULT_MAX_FRAME).is_err());
        let frame = menos_net::encode_frame(KIND_EVICTED, 0, &[99]);
        assert!(decode_server_message(&frame, DEFAULT_MAX_FRAME).is_err());
        // Busy body must be exactly 8 retry-hint bytes.
        let frame = menos_net::encode_frame(KIND_BUSY, 0, &[1, 2, 3]);
        assert!(decode_server_message(&frame, DEFAULT_MAX_FRAME).is_err());
        let frame = menos_net::encode_frame(KIND_BUSY, 0, &[0; 12]);
        assert!(decode_server_message(&frame, DEFAULT_MAX_FRAME).is_err());
        // Ping body must be exactly 8 sequence bytes.
        let frame = menos_net::encode_frame(KIND_PING, 0, &[1, 2, 3]);
        assert!(decode_client_message(&frame, DEFAULT_MAX_FRAME).is_err());
        // ImportSession must carry a blob.
        let frame = menos_net::encode_frame(KIND_IMPORT_SESSION, 0, &[]);
        assert!(decode_client_message(&frame, DEFAULT_MAX_FRAME).is_err());
        // Redirect needs a hint and a non-empty UTF-8 address.
        let frame = menos_net::encode_frame(KIND_REDIRECT, 0, &[0; 8]);
        assert!(decode_server_message(&frame, DEFAULT_MAX_FRAME).is_err());
        let mut bad_utf8 = 0u64.to_le_bytes().to_vec();
        bad_utf8.extend_from_slice(&[0xff, 0xfe]);
        let frame = menos_net::encode_frame(KIND_REDIRECT, 0, &bad_utf8);
        assert!(decode_server_message(&frame, DEFAULT_MAX_FRAME).is_err());
        let frame = menos_net::encode_frame(KIND_REDIRECT, 0, &[0; 5]);
        assert!(decode_server_message(&frame, DEFAULT_MAX_FRAME).is_err());
        // Pong body is exactly 24 bytes; Imported exactly 8.
        let frame = menos_net::encode_frame(KIND_PONG, 0, &[0; 16]);
        assert!(decode_server_message(&frame, DEFAULT_MAX_FRAME).is_err());
        let frame = menos_net::encode_frame(KIND_PONG, 0, &[0; 32]);
        assert!(decode_server_message(&frame, DEFAULT_MAX_FRAME).is_err());
        let frame = menos_net::encode_frame(KIND_IMPORTED, 0, &[0; 4]);
        assert!(decode_server_message(&frame, DEFAULT_MAX_FRAME).is_err());
    }

    #[test]
    fn unknown_kind_rejected() {
        let frame = menos_net::encode_frame(99, 0, &[]);
        assert!(matches!(
            decode_client_message(&frame, DEFAULT_MAX_FRAME),
            Err(WireError::UnknownKind(99))
        ));
        // Kinds are directional: a client kind is not a server kind.
        let frame = menos_net::encode_frame(KIND_CONNECT, 0, &[]);
        assert!(matches!(
            decode_server_message(&frame, DEFAULT_MAX_FRAME),
            Err(WireError::UnknownKind(KIND_CONNECT))
        ));
        // ... and a server kind is not a client kind: `Busy` in a
        // client frame is rejected with the same typed error a pre-v1.3
        // decoder raises for the then-unknown kind 22 — a clean,
        // deterministic disconnect for old peers, never a hang.
        let frame = menos_net::encode_frame(KIND_BUSY, 0, &250u64.to_le_bytes());
        assert!(matches!(
            decode_client_message(&frame, DEFAULT_MAX_FRAME),
            Err(WireError::UnknownKind(KIND_BUSY))
        ));
        // v1.4 fleet kinds are directional too: a `Redirect` in a
        // client frame (or any v1.4 kind at a pre-v1.4 peer) raises the
        // same typed UnknownKind — pre-v1.4 clients meeting a fleet
        // coordinator observe a clean close, never a hang (§9.6).
        let mut body = 0u64.to_le_bytes().to_vec();
        body.extend_from_slice(b"127.0.0.1:1");
        let frame = menos_net::encode_frame(KIND_REDIRECT, 0, &body);
        assert!(matches!(
            decode_client_message(&frame, DEFAULT_MAX_FRAME),
            Err(WireError::UnknownKind(KIND_REDIRECT))
        ));
        let frame = menos_net::encode_frame(KIND_PING, 0, &0u64.to_le_bytes());
        assert!(matches!(
            decode_server_message(&frame, DEFAULT_MAX_FRAME),
            Err(WireError::UnknownKind(KIND_PING))
        ));
    }

    #[test]
    fn control_messages_reject_stray_payloads() {
        let frame = menos_net::encode_frame(KIND_READY, 0, b"junk");
        assert!(matches!(
            decode_server_message(&frame, DEFAULT_MAX_FRAME),
            Err(WireError::Malformed(_))
        ));
    }

    /// §7: the `Ready` codec echo has exactly one byte representation
    /// per value — raw is the empty body, a compressed codec is its
    /// tag byte, and everything else is malformed.
    #[test]
    fn ready_codec_echo_is_canonical() {
        // Raw encodes empty: byte-identical to the v1.1 Ready.
        let raw = encode_server_message(&ServerMessage::Ready {
            client: ClientId(9),
            codec: Codec::F32Raw,
        });
        assert_eq!(raw.len() as u64, menos_net::FRAME_HEADER_BYTES);
        // An explicit raw tag byte is non-canonical.
        let frame = menos_net::encode_frame(KIND_READY, 0, &[Codec::F32Raw.tag()]);
        assert!(matches!(
            decode_server_message(&frame, DEFAULT_MAX_FRAME),
            Err(WireError::Malformed(_))
        ));
        // An unknown tag byte is rejected.
        let frame = menos_net::encode_frame(KIND_READY, 0, &[200]);
        assert!(matches!(
            decode_server_message(&frame, DEFAULT_MAX_FRAME),
            Err(WireError::Malformed(_))
        ));
        // Every compressed codec round-trips through its tag byte.
        for codec in Codec::ALL.into_iter().filter(|c| *c != Codec::F32Raw) {
            let msg = ServerMessage::Ready {
                client: ClientId(9),
                codec,
            };
            let bytes = encode_server_message(&msg);
            assert_eq!(bytes.len() as u64, menos_net::FRAME_HEADER_BYTES + 1);
            assert_eq!(
                decode_server_message(&bytes, DEFAULT_MAX_FRAME).unwrap(),
                msg
            );
        }
    }

    /// §5/§7: the codec mask is the second appended Connect-body
    /// field. v1.0 and v1.1 bodies decode with mask 0; a partial mask
    /// is malformed.
    #[test]
    fn connect_codec_mask_is_a_tolerant_appended_field() {
        let cfg = ModelConfig::tiny_opt(10);
        let ft = FineTuneConfig::paper(&cfg);
        let split = SplitSpec::new(2);
        let mask = Codec::F16.flag() | Codec::BF16.flag();
        let body = encode_config_v12(&ft, split, 5, mask);
        let (ft2, split2, epoch, codecs) = decode_config_v12(&body).unwrap();
        assert_eq!((ft2, split2, epoch, codecs), (ft.clone(), split, 5, mask));
        // v1.1 encoder (mask omitted) decodes as mask 0.
        let v11 = encode_config_v12(&ft, split, 5, 0);
        assert_eq!(v11, encode_config(&ft, split, 5));
        let (_, _, epoch, codecs) = decode_config_v12(&v11).unwrap();
        assert_eq!((epoch, codecs), (5, 0));
        // Partial appended mask is malformed (all-or-nothing fields).
        let mut bad = body.clone();
        bad.truncate(bad.len() - 3);
        assert!(decode_config_v12(&bad).is_err());
    }

    /// `PROTOCOL.md` §2 is enforced against [`MessageKind`]: every
    /// kind must appear in the table for its direction with its exact
    /// name and code, and the tables must list nothing else.
    #[test]
    fn protocol_md_matches_message_kinds() {
        let doc =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../PROTOCOL.md"))
                .expect("PROTOCOL.md at the repository root");

        // Collect `(name, code, client_to_server)` from the §2 tables
        // only (§7's codec table shares the same row shape and is
        // checked by `protocol_md_matches_codec_table`): rows whose
        // first cell is a backticked identifier and whose second cell
        // is an integer. Direction = before/after §2.2.
        let section = &doc[doc.find("## 2.").expect("PROTOCOL.md §2")
            ..doc.find("## 3.").expect("PROTOCOL.md §3")];
        let server_section = section
            .find("### 2.2")
            .expect("PROTOCOL.md §2.2 server→client table");
        let documented = backticked_table_rows(section);

        let expected: Vec<(String, u8, bool)> = MessageKind::ALL
            .iter()
            .map(|k| (k.name().to_string(), k.code(), k.client_to_server()))
            .collect();
        assert_eq!(
            documented
                .into_iter()
                .map(|(name, code, pos)| (name, code, pos < server_section))
                .collect::<Vec<_>>(),
            expected,
            "PROTOCOL.md §2 message-kind tables drifted from MessageKind"
        );
    }

    /// Collects `(name, code, byte_offset)` from every table row in
    /// `section` whose first cell is a backticked identifier and whose
    /// second cell parses as an integer.
    fn backticked_table_rows(section: &str) -> Vec<(String, u8, usize)> {
        let mut rows = Vec::new();
        for (pos, line) in section.lines().scan(0usize, |off, l| {
            let pos = *off;
            *off += l.len() + 1;
            Some((pos, l))
        }) {
            let mut cells = line.split('|').map(str::trim).skip(1);
            let (Some(first), Some(second)) = (cells.next(), cells.next()) else {
                continue;
            };
            let name = first.strip_prefix('`').and_then(|s| s.strip_suffix('`'));
            let (Some(name), Ok(code)) = (name, second.parse::<u8>()) else {
                continue;
            };
            rows.push((name.to_string(), code, pos));
        }
        rows
    }

    /// `PROTOCOL.md` §7's codec table is enforced against
    /// [`menos_net::Codec`] exactly as §2 is against [`MessageKind`]:
    /// every codec with its exact name, tag, and feature-flag bit, and
    /// nothing else.
    #[test]
    fn protocol_md_matches_codec_table() {
        let doc =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../PROTOCOL.md"))
                .expect("PROTOCOL.md at the repository root");
        let section = &doc[doc
            .find("## 7.")
            .expect("PROTOCOL.md §7 tensor compression")..];

        let documented: Vec<(String, u8)> = backticked_table_rows(section)
            .into_iter()
            .map(|(name, code, _)| (name, code))
            .collect();
        let expected: Vec<(String, u8)> = Codec::ALL
            .iter()
            .map(|c| (c.name().to_string(), c.tag()))
            .collect();
        assert_eq!(
            documented, expected,
            "PROTOCOL.md §7 codec table drifted from menos_net::Codec"
        );

        // The documented flag bits must match `Codec::flag` too: the
        // table's third cell is the bit index.
        for line in section.lines() {
            let mut cells = line.split('|').map(str::trim).skip(1);
            let (Some(first), Some(_), Some(third)) = (cells.next(), cells.next(), cells.next())
            else {
                continue;
            };
            let name = first.strip_prefix('`').and_then(|s| s.strip_suffix('`'));
            let (Some(name), Ok(bit)) = (name, third.parse::<u32>()) else {
                continue;
            };
            let codec = Codec::parse(name).expect("documented codec exists");
            assert_eq!(
                codec.flag(),
                1u64 << bit,
                "PROTOCOL.md §7 flag bit for {name} drifted"
            );
        }
    }

    #[test]
    fn oversize_frame_rejected_by_cap() {
        let big = vec![0u8; 1024];
        let frame = menos_net::encode_frame(KIND_ACTIVATIONS, 0, &big);
        assert!(matches!(
            decode_client_message(&frame, 512),
            Err(WireError::TooLarge { .. })
        ));
    }
}

//! A real TCP transport for the split fine-tuning protocol.
//!
//! The simulated `menos-net` link powers the paper-scale experiments;
//! this module makes the same protocol run over actual sockets so the
//! system can be deployed between real machines (or across threads in
//! the tests). Framing: one byte of message type, a little-endian u64
//! payload length, then the payload (tensor frames use the
//! `menos-net` wire codec).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use bytes::Bytes;

use menos_adapters::{AdapterKind, FineTuneConfig, OptimKind};
use menos_data::LossCurve;
use menos_models::{AdapterTarget, LoraSpec};
use menos_net::{decode_tensor, encode_tensor};
use menos_tensor::Tensor;

use crate::client::SplitClient;
use crate::driver::ForwardMode;
use crate::server::ServerSession;
use crate::spec::SplitSpec;

const MSG_CONNECT: u8 = 1;
const MSG_READY: u8 = 2;
const MSG_ACTIVATIONS: u8 = 3;
const MSG_SERVER_ACTIVATIONS: u8 = 4;
const MSG_GRADIENTS: u8 = 5;
const MSG_SERVER_GRADIENTS: u8 = 6;
const MSG_DISCONNECT: u8 = 7;

/// Errors from the TCP transport.
#[derive(Debug)]
pub enum TcpError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// Peer sent a frame that does not decode.
    Protocol(String),
}

impl std::fmt::Display for TcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpError::Io(e) => write!(f, "socket error: {e}"),
            TcpError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for TcpError {}

impl From<std::io::Error> for TcpError {
    fn from(e: std::io::Error) -> Self {
        TcpError::Io(e)
    }
}

fn write_frame(stream: &mut TcpStream, kind: u8, payload: &[u8]) -> Result<(), TcpError> {
    stream.write_all(&[kind])?;
    stream.write_all(&(payload.len() as u64).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()?;
    Ok(())
}

fn read_frame(stream: &mut TcpStream) -> Result<(u8, Vec<u8>), TcpError> {
    let mut kind = [0u8; 1];
    stream.read_exact(&mut kind)?;
    let mut len = [0u8; 8];
    stream.read_exact(&mut len)?;
    let len = u64::from_le_bytes(len);
    if len > (1 << 32) {
        return Err(TcpError::Protocol(format!("oversized frame: {len} bytes")));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok((kind[0], payload))
}

fn write_tensor_frame(stream: &mut TcpStream, kind: u8, t: &Tensor) -> Result<(), TcpError> {
    write_frame(stream, kind, &encode_tensor(t))
}

fn read_tensor_payload(payload: Vec<u8>) -> Result<Tensor, TcpError> {
    decode_tensor(&Bytes::from(payload)).map_err(|e| TcpError::Protocol(e.to_string()))
}

// ----------------------------------------------------------------------
// Config encoding (self-contained binary layout; serde derives exist on
// these types but no wire format crate is in the dependency set).
// ----------------------------------------------------------------------

fn encode_config(ft: &FineTuneConfig, split: SplitSpec) -> Vec<u8> {
    let mut out = Vec::new();
    match &ft.adapter {
        AdapterKind::Lora { spec, targets } => {
            out.push(0u8);
            out.extend((spec.rank as u64).to_le_bytes());
            out.extend(spec.alpha.to_le_bytes());
            out.extend((spec.targets_per_block as u64).to_le_bytes());
            out.push(targets.len() as u8);
            for t in targets {
                out.push(match t {
                    AdapterTarget::Q => 0,
                    AdapterTarget::K => 1,
                    AdapterTarget::V => 2,
                    AdapterTarget::O => 3,
                    AdapterTarget::MlpUp => 4,
                    AdapterTarget::MlpDown => 5,
                });
            }
        }
        AdapterKind::Prefix { len } => {
            out.push(1u8);
            out.extend((*len as u64).to_le_bytes());
        }
    }
    match ft.optimizer {
        OptimKind::Adam { lr } => {
            out.push(0u8);
            out.extend(lr.to_le_bytes());
        }
        OptimKind::Sgd { lr, momentum } => {
            out.push(1u8);
            out.extend(lr.to_le_bytes());
            out.extend(momentum.to_le_bytes());
        }
    }
    out.extend((ft.batch_size as u64).to_le_bytes());
    out.extend((ft.seq_len as u64).to_le_bytes());
    out.extend((ft.grad_accumulation as u64).to_le_bytes());
    out.extend((split.front_layers as u64).to_le_bytes());
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, TcpError> {
        let v = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| TcpError::Protocol("truncated config".into()))?;
        self.pos += 1;
        Ok(v)
    }
    fn u64(&mut self) -> Result<u64, TcpError> {
        let end = self.pos + 8;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| TcpError::Protocol("truncated config".into()))?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }
    fn f32(&mut self) -> Result<f32, TcpError> {
        let end = self.pos + 4;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| TcpError::Protocol("truncated config".into()))?;
        self.pos = end;
        Ok(f32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }
}

fn decode_config(buf: &[u8]) -> Result<(FineTuneConfig, SplitSpec), TcpError> {
    let mut c = Cursor { buf, pos: 0 };
    let adapter = match c.u8()? {
        0 => {
            let rank = c.u64()? as usize;
            let alpha = c.f32()?;
            let targets_per_block = c.u64()? as usize;
            let n = c.u8()? as usize;
            let mut targets = Vec::with_capacity(n);
            for _ in 0..n {
                targets.push(match c.u8()? {
                    0 => AdapterTarget::Q,
                    1 => AdapterTarget::K,
                    2 => AdapterTarget::V,
                    3 => AdapterTarget::O,
                    4 => AdapterTarget::MlpUp,
                    5 => AdapterTarget::MlpDown,
                    x => return Err(TcpError::Protocol(format!("bad target {x}"))),
                });
            }
            AdapterKind::Lora {
                spec: LoraSpec {
                    rank,
                    alpha,
                    targets_per_block,
                },
                targets,
            }
        }
        1 => AdapterKind::Prefix {
            len: c.u64()? as usize,
        },
        x => return Err(TcpError::Protocol(format!("bad adapter kind {x}"))),
    };
    let optimizer = match c.u8()? {
        0 => OptimKind::Adam { lr: c.f32()? },
        1 => OptimKind::Sgd {
            lr: c.f32()?,
            momentum: c.f32()?,
        },
        x => return Err(TcpError::Protocol(format!("bad optimizer kind {x}"))),
    };
    let batch_size = c.u64()? as usize;
    let seq_len = c.u64()? as usize;
    let grad_accumulation = c.u64()? as usize;
    let front_layers = c.u64()? as usize;
    Ok((
        FineTuneConfig {
            adapter,
            optimizer,
            batch_size,
            seq_len,
            grad_accumulation,
        },
        SplitSpec::new(front_layers),
    ))
}

// ----------------------------------------------------------------------
// Server
// ----------------------------------------------------------------------

/// Builds a per-connection [`ServerSession`] from the configuration the
/// client reported — typically closing over a shared base registry.
pub type SessionFactory = dyn Fn(FineTuneConfig, SplitSpec) -> ServerSession + Send + Sync;

/// A TCP split-fine-tuning server: accepts connections and serves each
/// on its own thread with the Menos execution path (no-grad forward +
/// re-forward backward).
///
/// # Examples
///
/// See the integration test in this module or the `tcp_demo` example.
pub struct TcpSplitServer {
    addr: std::net::SocketAddr,
    handle: Option<JoinHandle<()>>,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
}

impl TcpSplitServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting. `max_clients` connections are served before the
    /// accept loop exits (keeps tests and demos bounded).
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        factory: Arc<SessionFactory>,
        mode: ForwardMode,
        max_clients: usize,
    ) -> Result<TcpSplitServer, TcpError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let shutdown2 = shutdown.clone();
        let handle = std::thread::spawn(move || {
            let mut workers = Vec::new();
            for _ in 0..max_clients {
                if shutdown2.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                let Ok((stream, _)) = listener.accept() else {
                    break;
                };
                let factory = factory.clone();
                workers.push(std::thread::spawn(move || {
                    if let Err(e) = serve_connection(stream, &factory, mode) {
                        eprintln!("connection ended with error: {e}");
                    }
                }));
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(TcpSplitServer {
            addr: local,
            handle: Some(handle),
            shutdown,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Waits for the accept loop (all `max_clients` served) to finish.
    pub fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpSplitServer {
    fn drop(&mut self) {
        self.shutdown
            .store(true, std::sync::atomic::Ordering::Relaxed);
        // The accept loop exits after the in-flight clients; tests call
        // join() explicitly, so dropping without join leaks at most a
        // blocked accept until process exit.
    }
}

fn serve_connection(
    mut stream: TcpStream,
    factory: &Arc<SessionFactory>,
    mode: ForwardMode,
) -> Result<(), TcpError> {
    stream.set_nodelay(true)?;
    let (kind, payload) = read_frame(&mut stream)?;
    if kind != MSG_CONNECT {
        return Err(TcpError::Protocol(format!("expected CONNECT, got {kind}")));
    }
    let (ft, split) = decode_config(&payload)?;
    let mut session = factory(ft, split);
    write_frame(&mut stream, MSG_READY, &[])?;

    loop {
        let (kind, payload) = read_frame(&mut stream)?;
        match kind {
            MSG_ACTIVATIONS => {
                let x_c = read_tensor_payload(payload)?;
                let x_s = match mode {
                    ForwardMode::Cached => session.forward_cached(&x_c),
                    ForwardMode::NoGradReforward => session.forward_nograd(&x_c),
                };
                write_tensor_frame(&mut stream, MSG_SERVER_ACTIVATIONS, &x_s)?;
            }
            MSG_GRADIENTS => {
                let g_c = read_tensor_payload(payload)?;
                let g_s = session.backward(&g_c);
                write_tensor_frame(&mut stream, MSG_SERVER_GRADIENTS, &g_s)?;
            }
            MSG_DISCONNECT => return Ok(()),
            other => {
                return Err(TcpError::Protocol(format!(
                    "unexpected message {other} mid-session"
                )))
            }
        }
    }
}

// ----------------------------------------------------------------------
// Client
// ----------------------------------------------------------------------

/// Runs `steps` split fine-tuning iterations against a
/// [`TcpSplitServer`], returning the loss curve.
///
/// # Errors
///
/// Fails on socket or protocol errors; the client's local state is
/// consistent up to the last completed step.
pub fn run_tcp_client(
    addr: impl ToSocketAddrs,
    client: &mut SplitClient,
    steps: usize,
) -> Result<LossCurve, TcpError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    write_frame(
        &mut stream,
        MSG_CONNECT,
        &encode_config(client.ft_config(), client.split()),
    )?;
    let (kind, _) = read_frame(&mut stream)?;
    if kind != MSG_READY {
        return Err(TcpError::Protocol(format!("expected READY, got {kind}")));
    }
    for _ in 0..steps {
        let x_c = client.start_step();
        write_tensor_frame(&mut stream, MSG_ACTIVATIONS, &x_c)?;
        let (kind, payload) = read_frame(&mut stream)?;
        if kind != MSG_SERVER_ACTIVATIONS {
            return Err(TcpError::Protocol(format!("expected x_s, got {kind}")));
        }
        let x_s = read_tensor_payload(payload)?;
        let (_, g_c) = client.receive_server_activations(&x_s);
        write_tensor_frame(&mut stream, MSG_GRADIENTS, &g_c)?;
        let (kind, payload) = read_frame(&mut stream)?;
        if kind != MSG_SERVER_GRADIENTS {
            return Err(TcpError::Protocol(format!("expected g_s, got {kind}")));
        }
        let g_s = read_tensor_payload(payload)?;
        client.receive_server_gradients(&g_s);
    }
    write_frame(&mut stream, MSG_DISCONNECT, &[])?;
    Ok(client.curve().clone())
}

/// Convenience: a [`SessionFactory`] over a mutex-guarded shared-base
/// parameter store.
pub fn registry_session_factory(
    config: menos_models::ModelConfig,
    base: Arc<Mutex<menos_tensor::ParamStore>>,
    seed: u64,
) -> Arc<SessionFactory> {
    let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
    Arc::new(move |ft: FineTuneConfig, split: SplitSpec| {
        let id = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let view = base.lock().expect("registry lock").shared_view(false);
        let model = menos_models::CausalLm::bind(&config, &view);
        ServerSession::new(crate::message::ClientId(id), model, split, &ft, seed + id)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ClientId;
    use menos_data::{wiki_corpus, TokenDataset, Vocab};
    use menos_models::{CausalLm, ModelConfig};
    use menos_sim::seeded_rng;

    #[test]
    fn config_round_trip() {
        let cfg = ModelConfig::tiny_opt(10);
        let ft = FineTuneConfig::paper(&cfg);
        let split = SplitSpec::new(2);
        let (ft2, split2) = decode_config(&encode_config(&ft, split)).unwrap();
        assert_eq!(ft, ft2);
        assert_eq!(split, split2);

        let ft = FineTuneConfig {
            adapter: AdapterKind::Prefix { len: 6 },
            optimizer: OptimKind::Sgd {
                lr: 0.1,
                momentum: 0.5,
            },
            batch_size: 3,
            seq_len: 17,
            grad_accumulation: 4,
        };
        let (ft2, _) = decode_config(&encode_config(&ft, split)).unwrap();
        assert_eq!(ft, ft2);
    }

    #[test]
    fn config_decode_rejects_garbage() {
        assert!(decode_config(&[]).is_err());
        assert!(decode_config(&[9, 0, 0]).is_err());
    }

    #[test]
    fn two_clients_train_over_real_sockets() {
        let text = wiki_corpus(31, 12_000);
        let vocab = Vocab::from_text(&text);
        let config = ModelConfig::tiny_opt(vocab.size());
        let mut rng = seeded_rng(31, "tcp");
        let base = Arc::new(Mutex::new(menos_models::init_params(&config, &mut rng)));

        let factory = registry_session_factory(config.clone(), base.clone(), 500);
        let server = TcpSplitServer::spawn("127.0.0.1:0", factory, ForwardMode::NoGradReforward, 2)
            .expect("bind");
        let addr = server.addr();

        let mut handles = Vec::new();
        for k in 0..2u64 {
            let text = text.clone();
            let config = config.clone();
            let base = base.clone();
            handles.push(std::thread::spawn(move || {
                let vocab = Vocab::from_text(&text);
                let mut ft = FineTuneConfig::paper(&config);
                ft.batch_size = 2;
                ft.seq_len = 16;
                let ds = TokenDataset::new(vocab.encode(&text), 16, k);
                let view = base.lock().unwrap().shared_view(false);
                let mut client = SplitClient::new(
                    ClientId(k),
                    CausalLm::bind(&config, &view),
                    SplitSpec::paper(),
                    ft,
                    ds,
                    k,
                );
                run_tcp_client(addr, &mut client, 6).expect("tcp training")
            }));
        }
        for h in handles {
            let curve = h.join().expect("client thread");
            assert_eq!(curve.points().len(), 6);
            assert!(
                curve.final_loss().unwrap() < curve.points()[0].1 + 0.05,
                "{:?}",
                curve.points()
            );
        }
        server.join();
    }
}

//! TCP framing for the split fine-tuning protocol.
//!
//! This module contains **no protocol logic**: it is a
//! [`Transport`] implementation over `std::net::TcpStream` plus an
//! accept loop. Message bytes come from the unified codec
//! ([`crate::codec`]), the client loop is [`drive_client`], and the
//! server loop is [`serve_loop`] feeding a shared
//! [`MessageHandler`] — the same state machine every other transport
//! drives.
//!
//! Robustness: each frame header is validated (version, magic,
//! declared length vs a configurable cap) before any payload
//! allocation, connections carry read/write deadlines, and a failing
//! connection reclaims its session via `serve_loop`'s
//! disconnect-reclamation — other clients keep training.

use std::marker::PhantomData;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use menos_data::LossCurve;
use menos_net::{read_frame_bytes, FrameAccumulator, WriteQueue, DEFAULT_MAX_FRAME};

use crate::client::SplitClient;
use crate::event_loop::{
    BatchHandler, EventConn, EventListener, EventLoopOptions, EventLoopStats, ServerEventLoop,
    SnapshotPolicy,
};
use crate::message::{ClientMessage, ServerMessage};
use crate::protocol::{
    drive_client, serve_loop, MessageHandler, ProtocolError, Transport, WireMessage,
};

/// Tuning knobs for TCP endpoints.
#[derive(Debug, Clone, Copy)]
pub struct TcpOptions {
    /// Largest payload a peer may declare (frames above this are
    /// rejected before allocation). A *protocol* limit: both ends must
    /// agree on it.
    pub max_frame: usize,
    /// Per-operation read/write deadline (`None` blocks forever).
    pub io_timeout: Option<Duration>,
    /// Per-session reassembly staging cap for the nonblocking path
    /// (`None` = header + `max_frame`). A *deployment* memory knob:
    /// lowering it bounds what N slow-dripping sessions can pin in
    /// server memory, independent of the protocol frame limit.
    pub max_staged: Option<usize>,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            max_frame: DEFAULT_MAX_FRAME,
            io_timeout: Some(Duration::from_secs(30)),
            max_staged: None,
        }
    }
}

/// A [`Transport`] over one TCP stream. The client side is
/// `TcpTransport<ClientMessage, ServerMessage>`; the server side is
/// the mirror image.
pub struct TcpTransport<Tx, Rx> {
    stream: TcpStream,
    max_frame: usize,
    _marker: PhantomData<fn(Tx) -> Rx>,
}

impl TcpTransport<ClientMessage, ServerMessage> {
    /// Connects a client endpoint to a listening server.
    ///
    /// # Errors
    ///
    /// Fails if the address does not resolve or the connection is
    /// refused.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ProtocolError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, TcpOptions::default())
    }
}

impl<Tx: WireMessage, Rx: WireMessage> TcpTransport<Tx, Rx> {
    /// Wraps an accepted or connected stream.
    ///
    /// # Errors
    ///
    /// Fails if socket options cannot be applied.
    pub fn from_stream(stream: TcpStream, options: TcpOptions) -> Result<Self, ProtocolError> {
        stream.set_nodelay(true)?;
        let mut transport = TcpTransport {
            stream,
            max_frame: options.max_frame,
            _marker: PhantomData,
        };
        transport.set_deadline(options.io_timeout)?;
        Ok(transport)
    }
}

impl<Tx: WireMessage, Rx: WireMessage> Transport for TcpTransport<Tx, Rx> {
    type Tx = Tx;
    type Rx = Rx;

    fn send(&mut self, msg: &Tx) -> Result<(), ProtocolError> {
        use std::io::Write;
        // Header and body go out in one vectored write; the tensor
        // body is the encoder's buffer shared by reference, so no
        // contiguous frame copy is ever built.
        let (header, body) = msg.to_wire_parts();
        menos_net::write_frame_vectored(&mut self.stream, &header, &body)?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Rx, ProtocolError> {
        let frame = read_frame_bytes(&mut self.stream, self.max_frame)?;
        Ok(Rx::from_wire(&frame, self.max_frame)?)
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), ProtocolError> {
        self.stream.set_read_timeout(deadline)?;
        self.stream.set_write_timeout(deadline)?;
        Ok(())
    }
}

/// A TCP accept loop serving the split protocol: each connection gets
/// its own thread running [`serve_loop`] against a shared
/// [`MessageHandler`] (typically `menos-core`'s `MenosServer`), so
/// admission control and error isolation apply identically over
/// sockets and in-memory transports.
pub struct TcpSplitServer {
    addr: std::net::SocketAddr,
    handle: Option<JoinHandle<()>>,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
}

impl TcpSplitServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting with default [`TcpOptions`]. `max_clients`
    /// connections are served before the accept loop exits (keeps
    /// tests and demos bounded).
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn spawn<H>(
        addr: impl ToSocketAddrs,
        handler: Arc<Mutex<H>>,
        max_clients: usize,
    ) -> Result<TcpSplitServer, ProtocolError>
    where
        H: MessageHandler + Send + 'static,
    {
        Self::spawn_with(addr, handler, max_clients, TcpOptions::default())
    }

    /// [`TcpSplitServer::spawn`] with explicit frame-cap and deadline
    /// options applied to every connection.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn spawn_with<H>(
        addr: impl ToSocketAddrs,
        handler: Arc<Mutex<H>>,
        max_clients: usize,
        options: TcpOptions,
    ) -> Result<TcpSplitServer, ProtocolError>
    where
        H: MessageHandler + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let shutdown2 = shutdown.clone();
        let handle = std::thread::spawn(move || {
            let mut workers = Vec::new();
            for _ in 0..max_clients {
                if shutdown2.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                let Ok((stream, _)) = listener.accept() else {
                    break;
                };
                let mut handler = handler.clone();
                workers.push(std::thread::spawn(move || {
                    let mut transport =
                        match TcpTransport::<ServerMessage, ClientMessage>::from_stream(
                            stream, options,
                        ) {
                            Ok(t) => t,
                            Err(e) => {
                                eprintln!("connection setup failed: {e}");
                                return;
                            }
                        };
                    if let Err(e) = serve_loop(&mut transport, &mut handler) {
                        // A peer that hangs up without a `Disconnect`
                        // is an ordinary connection end — redirected
                        // fleet clients do it by design — not
                        // operator-actionable noise. `connection_lost`
                        // has already reclaimed the session.
                        if !matches!(e, ProtocolError::Disconnected) {
                            eprintln!("connection ended with error: {e}");
                        }
                    }
                }));
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(TcpSplitServer {
            addr: local,
            handle: Some(handle),
            shutdown,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Waits for the accept loop (all `max_clients` served) to finish.
    pub fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpSplitServer {
    fn drop(&mut self) {
        self.shutdown
            .store(true, std::sync::atomic::Ordering::Relaxed);
        // The accept loop exits after the in-flight clients; tests call
        // join() explicitly, so dropping without join leaks at most a
        // blocked accept until process exit.
    }
}

// ----------------------------------------------------------------------
// Nonblocking TCP for the event-driven server
// ----------------------------------------------------------------------

/// One nonblocking TCP connection as seen by the event loop: a
/// [`FrameAccumulator`] reassembles inbound fragments into the exact
/// frames the blocking reader would produce, and a [`WriteQueue`]
/// resumes outbound frames wherever the socket stopped accepting
/// bytes — even mid-header.
pub struct TcpEventConn {
    stream: TcpStream,
    acc: FrameAccumulator,
    writes: WriteQueue,
    max_frame: usize,
}

impl TcpEventConn {
    /// Wraps an accepted stream, switching it to nonblocking mode.
    ///
    /// # Errors
    ///
    /// Fails if socket options cannot be applied.
    pub fn from_stream(stream: TcpStream, options: TcpOptions) -> Result<Self, ProtocolError> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let mut acc = FrameAccumulator::new(options.max_frame);
        if let Some(cap) = options.max_staged {
            acc = acc.with_staged_cap(cap);
        }
        Ok(TcpEventConn {
            stream,
            acc,
            writes: WriteQueue::new(),
            max_frame: options.max_frame,
        })
    }
}

impl EventConn for TcpEventConn {
    fn poll_recv(&mut self, out: &mut Vec<ClientMessage>) -> Result<(), ProtocolError> {
        use std::io::Read;
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    // EOF: surface buffered messages now, the
                    // disconnect on the next sweep.
                    return if out.is_empty() {
                        Err(ProtocolError::Disconnected)
                    } else {
                        Ok(())
                    };
                }
                Ok(n) => {
                    for frame in self.acc.push(&buf[..n])? {
                        out.push(ClientMessage::from_wire(&frame, self.max_frame)?);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn queue(&mut self, msg: &ServerMessage) -> Result<(), ProtocolError> {
        let (header, body) = msg.to_wire_parts();
        self.writes.push_frame(header, body);
        self.flush().map(|_| ())
    }

    fn flush(&mut self) -> Result<bool, ProtocolError> {
        // write_to swallows WouldBlock (returns Ok(false)); any error
        // it surfaces is fatal to the connection.
        Ok(self.writes.write_to(&mut self.stream)?)
    }

    fn has_queued_writes(&self) -> bool {
        !self.writes.is_empty()
    }

    fn queued_write_bytes(&self) -> u64 {
        self.writes.queued_bytes() as u64
    }
}

/// A nonblocking accept source feeding [`TcpEventConn`]s to a
/// [`ServerEventLoop`].
pub struct TcpEventListener {
    listener: TcpListener,
    options: TcpOptions,
    addr: std::net::SocketAddr,
}

impl TcpEventListener {
    /// Binds to `addr` (port 0 for ephemeral) in nonblocking mode.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn bind(addr: impl ToSocketAddrs, options: TcpOptions) -> Result<Self, ProtocolError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(TcpEventListener {
            listener,
            options,
            addr,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }
}

impl EventListener for TcpEventListener {
    type Conn = TcpEventConn;

    fn poll_accept(&mut self) -> Result<Option<TcpEventConn>, ProtocolError> {
        match self.listener.accept() {
            Ok((stream, _)) => Ok(Some(TcpEventConn::from_stream(stream, self.options)?)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

/// The event-driven counterpart of [`TcpSplitServer`]: ONE thread
/// runs a [`ServerEventLoop`] over a nonblocking listener, serving
/// every client and batching their ready messages into single server
/// steps. The handler needs no `Arc<Mutex<_>>` — the loop owns it.
pub struct TcpEventServer<H> {
    addr: std::net::SocketAddr,
    handle: Option<JoinHandle<(H, EventLoopStats)>>,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
}

impl<H> TcpEventServer<H>
where
    H: BatchHandler + Send + 'static,
{
    /// Binds to `addr` and starts the loop thread. `options` bounds
    /// the run ([`EventLoopOptions::accept_limit`] connections are
    /// served before the loop exits); `tcp` sets per-connection frame
    /// caps.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        handler: H,
        options: EventLoopOptions,
        tcp: TcpOptions,
    ) -> Result<TcpEventServer<H>, ProtocolError> {
        Self::spawn_inner(addr, handler, options, tcp, None)
    }

    /// [`TcpEventServer::spawn`] with durable-state snapshots: the
    /// loop persists the handler's state per `policy` (see
    /// [`SnapshotPolicy`] for the cadence and the atomic-write
    /// guarantee), including a final snapshot at shutdown.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn spawn_with_snapshots(
        addr: impl ToSocketAddrs,
        handler: H,
        options: EventLoopOptions,
        tcp: TcpOptions,
        policy: SnapshotPolicy,
    ) -> Result<TcpEventServer<H>, ProtocolError> {
        Self::spawn_inner(addr, handler, options, tcp, Some(policy))
    }

    fn spawn_inner(
        addr: impl ToSocketAddrs,
        handler: H,
        options: EventLoopOptions,
        tcp: TcpOptions,
        policy: Option<SnapshotPolicy>,
    ) -> Result<TcpEventServer<H>, ProtocolError> {
        let listener = TcpEventListener::bind(addr, tcp)?;
        let addr = listener.addr();
        let mut event_loop = ServerEventLoop::new(listener, handler, options);
        if let Some(policy) = policy {
            event_loop = event_loop.with_snapshots(policy);
        }
        let shutdown = event_loop.shutdown_handle();
        let handle = std::thread::spawn(move || event_loop.run());
        Ok(TcpEventServer {
            addr,
            handle: Some(handle),
            shutdown,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Waits for the loop to finish, returning the handler and the
    /// run's counters.
    pub fn join(mut self) -> Option<(H, EventLoopStats)> {
        self.handle.take().and_then(|h| h.join().ok())
    }
}

impl<H> Drop for TcpEventServer<H> {
    fn drop(&mut self) {
        self.shutdown
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Runs `steps` split fine-tuning iterations against a TCP server,
/// returning the loss curve. Thin shorthand for
/// [`TcpTransport::connect`] + [`drive_client`].
///
/// # Errors
///
/// Fails on socket or protocol errors; the client's local state is
/// consistent up to the last completed step.
pub fn run_tcp_client(
    addr: impl ToSocketAddrs,
    client: &mut SplitClient,
    steps: usize,
) -> Result<LossCurve, ProtocolError> {
    let mut transport = TcpTransport::connect(addr)?;
    drive_client(client, &mut transport, steps)
}

/// Fault-tolerant [`run_tcp_client`]: survives transient socket faults
/// by redialing under `policy`'s capped backoff and re-attaching to
/// the quarantined server session with the `Resume` handshake
/// (PROTOCOL.md §6) — the loss curve of a faulted-and-resumed run is
/// bit-identical to an uninterrupted one.
///
/// # Errors
///
/// The first non-retryable [`ProtocolError`], or the last error once
/// `policy`'s retry budget is exhausted.
pub fn run_tcp_client_resumable(
    addr: impl ToSocketAddrs,
    client: &mut SplitClient,
    steps: usize,
    policy: &crate::retry::RetryPolicy,
) -> Result<LossCurve, ProtocolError> {
    crate::retry::drive_client_resumable(client, || TcpTransport::connect(&addr), steps, policy)
}

/// Fleet-aware [`run_tcp_client_resumable`] (PROTOCOL.md §9):
/// `coordinator` is dialed first and whenever the current route dies;
/// v1.4 `Redirect` replies steer the dial at the placed backend
/// without spending retry budget. A backend death mid-run therefore
/// walks the client back to the coordinator, which answers `Busy`
/// until migration completes and then redirects to the session's new
/// home, where the ordinary `Resume` reconciliation finishes the job.
///
/// # Errors
///
/// The first non-retryable [`ProtocolError`], or the last error once
/// `policy`'s retry budget is exhausted.
pub fn run_tcp_client_fleet(
    coordinator: &str,
    client: &mut SplitClient,
    steps: usize,
    policy: &crate::retry::RetryPolicy,
) -> Result<LossCurve, ProtocolError> {
    crate::retry::drive_client_routed(
        client,
        |route| TcpTransport::connect(route.unwrap_or(coordinator)),
        steps,
        policy,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::ForwardMode;
    use crate::message::ClientId;
    use crate::protocol::SessionHandler;
    use crate::server::ServerSession;
    use crate::spec::SplitSpec;
    use menos_adapters::FineTuneConfig;
    use menos_data::{wiki_corpus, TokenDataset, Vocab};
    use menos_models::{CausalLm, ModelConfig};
    use menos_sim::seeded_rng;

    fn pair(seed: u64) -> (SplitClient, ServerSession) {
        let text = wiki_corpus(31, 6000);
        let vocab = Vocab::from_text(&text);
        let cfg = ModelConfig::tiny_opt(vocab.size());
        let mut rng = seeded_rng(31, "tcp");
        let ps = menos_models::init_params(&cfg, &mut rng);
        let ds = TokenDataset::new(vocab.encode(&text), 16, seed);
        let mut ft = FineTuneConfig::paper(&cfg);
        ft.batch_size = 2;
        ft.seq_len = 16;
        let split = SplitSpec::paper();
        let client = SplitClient::new(
            ClientId(0),
            CausalLm::bind(&cfg, &ps.shared_view(false)),
            split,
            ft.clone(),
            ds,
            seed,
        );
        let session = ServerSession::new(
            ClientId(0),
            CausalLm::bind(&cfg, &ps.shared_view(false)),
            split,
            &ft,
            seed,
        );
        (client, session)
    }

    #[test]
    fn client_trains_over_a_real_socket() {
        let (mut client, session) = pair(500);
        let handler = Arc::new(Mutex::new(SessionHandler::new(
            session,
            ForwardMode::NoGradReforward,
        )));
        let server = TcpSplitServer::spawn("127.0.0.1:0", handler.clone(), 1).expect("bind");
        let curve = run_tcp_client(server.addr(), &mut client, 4).expect("tcp training");
        assert_eq!(curve.points().len(), 4);
        assert!(
            curve.final_loss().unwrap() < curve.points()[0].1 + 0.05,
            "{:?}",
            curve.points()
        );
        server.join();
        // Clean disconnect released the session.
        assert!(handler.lock().unwrap().session().is_none());
    }

    #[test]
    fn hostile_length_prefix_cannot_oom_the_server() {
        use std::io::{Read, Write};
        let (_client, session) = pair(501);
        let handler = Arc::new(Mutex::new(SessionHandler::new(
            session,
            ForwardMode::NoGradReforward,
        )));
        // Tight cap so the test proves the check, not the allocator.
        let options = TcpOptions {
            max_frame: 1 << 20,
            io_timeout: Some(Duration::from_secs(5)),
            max_staged: None,
        };
        let server = TcpSplitServer::spawn_with("127.0.0.1:0", handler, 1, options).expect("bind");
        let mut socket = TcpStream::connect(server.addr()).expect("connect");
        // A header declaring a 4 GiB payload. The server must reject it
        // from the header alone and close the connection — never
        // allocate.
        socket
            .write_all(&menos_net::encode_frame_header(2, 0, u32::MAX))
            .expect("write hostile header");
        let mut buf = [0u8; 1];
        // Read returns 0 (EOF) once the server drops the connection.
        let n = socket.read(&mut buf).expect("read");
        assert_eq!(n, 0, "server must close on oversize declaration");
        server.join();
    }

    #[test]
    fn fleet_client_trains_through_a_redirecting_coordinator() {
        use crate::retry::RetryPolicy;

        /// A one-backend coordinator shim: control messages get a
        /// v1.4 `Redirect` at the real server, nothing else is legal.
        struct RedirectHandler {
            target: String,
        }

        impl crate::protocol::MessageHandler for RedirectHandler {
            fn handle(
                &mut self,
                msg: ClientMessage,
            ) -> Result<Option<ServerMessage>, ProtocolError> {
                match msg {
                    ClientMessage::Connect { client, .. }
                    | ClientMessage::Resume { client, .. } => Ok(Some(ServerMessage::Redirect {
                        client,
                        addr: self.target.clone(),
                        retry_after_ms: 0,
                    })),
                    other => Err(ProtocolError::Unexpected(format!(
                        "coordinator got {other:?}"
                    ))),
                }
            }

            fn connection_lost(&mut self, _client: ClientId) {}
        }

        let (mut client, session) = pair(502);
        let backend_handler = Arc::new(Mutex::new(SessionHandler::new(
            session,
            ForwardMode::NoGradReforward,
        )));
        let backend =
            TcpSplitServer::spawn("127.0.0.1:0", backend_handler.clone(), 1).expect("bind backend");
        let coordinator = TcpSplitServer::spawn(
            "127.0.0.1:0",
            Arc::new(Mutex::new(RedirectHandler {
                target: backend.addr().to_string(),
            })),
            1,
        )
        .expect("bind coordinator");

        let policy = RetryPolicy {
            retries: 2,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
            seed: 0,
        };
        let curve = run_tcp_client_fleet(&coordinator.addr().to_string(), &mut client, 4, &policy)
            .expect("fleet client trains through the redirect");
        assert_eq!(curve.points().len(), 4);
        backend.join();
        coordinator.join();
        assert!(backend_handler.lock().unwrap().session().is_none());
    }

    #[test]
    fn tcp_transport_surfaces_timeouts() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let _held = std::thread::spawn(move || listener.accept());
        let mut t = TcpTransport::connect(addr).expect("connect");
        t.set_deadline(Some(Duration::from_millis(50))).unwrap();
        let err = t.recv().unwrap_err();
        assert!(matches!(err, ProtocolError::Timeout), "{err}");
    }
}

//! The transport-agnostic protocol core: one error hierarchy, one
//! [`Transport`] abstraction, and one client/server message pump.
//!
//! Every execution path — in-process channels, the simulated WAN, and
//! real TCP sockets — moves the *same encoded bytes* (the unified
//! codec in [`crate::codec`]) through the same state machine:
//!
//! * [`drive_client`] is the only client-side protocol loop;
//! * [`serve_loop`] is the only server-side pump, feeding messages to
//!   a [`MessageHandler`] (the real-engine `MenosServer` in
//!   `menos-core`, or a single-session [`SessionHandler`]);
//! * [`dispatch_session`] is the per-session forward/backward step
//!   every handler delegates to.
//!
//! Errors anywhere in the stack surface as one typed
//! [`ProtocolError`]; `serve_loop` converts them into clean
//! disconnect-reclamation so a failing client never strands its
//! session memory.

use std::marker::PhantomData;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bytes::Bytes;

use menos_net::{FrameError, WanLink, WireError, DEFAULT_MAX_FRAME};
use menos_sim::Nanos;

use crate::client::SplitClient;
use crate::codec::{
    client_message_parts, decode_client_message, decode_client_message_parts,
    decode_server_message, decode_server_message_parts, encode_client_message,
    encode_server_message, server_message_parts,
};
use crate::driver::ForwardMode;
use crate::message::{ClientId, ClientMessage, ServerMessage};
use crate::server::ServerSession;
use menos_data::LossCurve;

// ----------------------------------------------------------------------
// Error hierarchy
// ----------------------------------------------------------------------

/// The unified error taxonomy of the split-learning protocol stack —
/// transport faults and state-machine violations in one hierarchy, so
/// every execution path reports failures identically.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying byte transport failed.
    Io(std::io::Error),
    /// Received bytes do not decode (truncation, bad magic/version,
    /// oversize declaration, unknown kind, malformed payload).
    Wire(WireError),
    /// A read or write missed its deadline.
    Timeout,
    /// The peer hung up (cleanly or mid-frame).
    Disconnected,
    /// A message referenced a client with no session.
    UnknownClient(ClientId),
    /// Messages arrived in an order Algorithm 1 does not allow.
    OutOfOrder(String),
    /// The server refused the client's configuration (validation or
    /// admission control).
    Rejected(String),
    /// The peer sent a well-formed message of the wrong type for the
    /// current protocol step.
    Unexpected(String),
    /// A `Resume` carried an epoch that does not match the quarantined
    /// session — a stale connection from before the last successful
    /// resume. Not retryable.
    StaleEpoch {
        /// The resuming client.
        client: ClientId,
        /// The epoch the quarantined session is at.
        expected: u64,
        /// The epoch the resume carried.
        got: u64,
    },
    /// A `Resume` arrived while the session's previous connection is
    /// still live — the server has not yet observed its death.
    /// Retryable: back off and resume again once the server reclaims
    /// the old connection.
    SessionActive(ClientId),
    /// The server shed the connection at admission — it is at capacity
    /// or the Alg. 2 reservation would oversubscribe the pool (v1.3).
    /// Retryable: wait at least the hinted duration, then reconnect.
    Busy {
        /// The shed client.
        client: ClientId,
        /// The server's load-aware reconnect hint, in milliseconds.
        retry_after_ms: u64,
    },
    /// The peer answered with a v1.4 `Redirect`: the session lives (or
    /// will live) at `addr`, dial there instead. Placement steering,
    /// not a fault — routed drivers chase it without spending their
    /// retry budget.
    Redirected {
        /// The redirected client.
        client: ClientId,
        /// Where to dial next (`host:port`).
        addr: String,
        /// Minimum wait before dialing, in milliseconds (0 = now).
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
            ProtocolError::Wire(e) => write!(f, "wire error: {e}"),
            ProtocolError::Timeout => write!(f, "deadline exceeded"),
            ProtocolError::Disconnected => write!(f, "peer disconnected"),
            ProtocolError::UnknownClient(c) => write!(f, "unknown client {c}"),
            ProtocolError::OutOfOrder(m) => write!(f, "protocol order violated: {m}"),
            ProtocolError::Rejected(m) => write!(f, "client rejected: {m}"),
            ProtocolError::Unexpected(m) => write!(f, "unexpected message: {m}"),
            ProtocolError::StaleEpoch {
                client,
                expected,
                got,
            } => write!(
                f,
                "stale resume for {client}: session is at epoch {expected}, resume carried {got}"
            ),
            ProtocolError::SessionActive(c) => {
                write!(f, "{c} still has a live connection; resume later")
            }
            ProtocolError::Busy {
                client,
                retry_after_ms,
            } => write!(
                f,
                "server busy: {client} shed at admission, retry after {retry_after_ms}ms"
            ),
            ProtocolError::Redirected {
                client,
                addr,
                retry_after_ms,
            } => write!(
                f,
                "redirected: {client} placed at {addr} (after {retry_after_ms}ms)"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ProtocolError::Timeout,
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::BrokenPipe => ProtocolError::Disconnected,
            _ => ProtocolError::Io(e),
        }
    }
}

impl From<WireError> for ProtocolError {
    fn from(e: WireError) -> Self {
        ProtocolError::Wire(e)
    }
}

impl From<FrameError> for ProtocolError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => e.into(),
            FrameError::Wire(e) => e.into(),
        }
    }
}

// ----------------------------------------------------------------------
// Typed messages ↔ wire bytes
// ----------------------------------------------------------------------

/// A protocol message with exactly one byte representation — the
/// bound every [`Transport`] endpoint type satisfies. Implemented by
/// [`ClientMessage`] and [`ServerMessage`] via the unified codec.
pub trait WireMessage: Sized {
    /// Serializes to the message's wire frame.
    fn to_wire(&self) -> Bytes;
    /// Serializes to `(header, body)` parts. Concatenated they are
    /// byte-identical to [`WireMessage::to_wire`], but tensor-bearing
    /// messages share their payload by reference instead of copying it
    /// into a contiguous frame — the zero-copy send path.
    fn to_wire_parts(&self) -> (Bytes, Bytes);
    /// Deserializes from a wire frame, enforcing `max_frame`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on any malformed frame.
    fn from_wire(bytes: &Bytes, max_frame: usize) -> Result<Self, WireError>;
    /// Deserializes from `(header, body)` parts, enforcing `max_frame`.
    /// Accepts exactly what [`WireMessage::from_wire`] accepts on the
    /// concatenation of the two slices.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on any malformed frame.
    fn from_wire_parts(header: &[u8], body: &Bytes, max_frame: usize) -> Result<Self, WireError>;
}

impl WireMessage for ClientMessage {
    fn to_wire(&self) -> Bytes {
        encode_client_message(self)
    }
    fn to_wire_parts(&self) -> (Bytes, Bytes) {
        client_message_parts(self)
    }
    fn from_wire(bytes: &Bytes, max_frame: usize) -> Result<Self, WireError> {
        decode_client_message(bytes, max_frame)
    }
    fn from_wire_parts(header: &[u8], body: &Bytes, max_frame: usize) -> Result<Self, WireError> {
        decode_client_message_parts(header, body, max_frame)
    }
}

impl WireMessage for ServerMessage {
    fn to_wire(&self) -> Bytes {
        encode_server_message(self)
    }
    fn to_wire_parts(&self) -> (Bytes, Bytes) {
        server_message_parts(self)
    }
    fn from_wire(bytes: &Bytes, max_frame: usize) -> Result<Self, WireError> {
        decode_server_message(bytes, max_frame)
    }
    fn from_wire_parts(header: &[u8], body: &Bytes, max_frame: usize) -> Result<Self, WireError> {
        decode_server_message_parts(header, body, max_frame)
    }
}

// ----------------------------------------------------------------------
// Transport
// ----------------------------------------------------------------------

/// A blocking, bidirectional channel for typed protocol messages.
///
/// `Tx` is what this endpoint sends, `Rx` what it receives: a client
/// endpoint is `Transport<Tx = ClientMessage, Rx = ServerMessage>`, a
/// server endpoint the mirror image. Implementations move the
/// *encoded* bytes of each message, so all transports are
/// byte-for-byte interchangeable.
pub trait Transport {
    /// Message type this endpoint sends.
    type Tx: WireMessage;
    /// Message type this endpoint receives.
    type Rx: WireMessage;

    /// Sends one message.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Disconnected`] if the peer is gone,
    /// [`ProtocolError::Timeout`] past the deadline, or a transport
    /// fault.
    fn send(&mut self, msg: &Self::Tx) -> Result<(), ProtocolError>;

    /// Receives the next message, blocking up to the configured
    /// deadline.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Wire`] if the peer's bytes do not decode,
    /// [`ProtocolError::Timeout`] / [`ProtocolError::Disconnected`] /
    /// [`ProtocolError::Io`] on transport faults.
    fn recv(&mut self) -> Result<Self::Rx, ProtocolError>;

    /// Sets the per-operation deadline for subsequent sends and
    /// receives (`None` blocks indefinitely).
    ///
    /// # Errors
    ///
    /// Transport-specific; the in-memory transports never fail.
    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), ProtocolError>;
}

/// In-memory transport endpoint: encoded frames over a pair of
/// `std::sync::mpsc` channels. The cheapest way to connect a client
/// and a server in one process — tests, benchmarks, and the
/// byte-identity harness all use it.
///
/// Frames travel as `(header, body)` parts so tensor payloads move by
/// `Bytes` refcount, never by copy.
pub struct ChannelTransport<Tx, Rx> {
    tx: mpsc::Sender<(Bytes, Bytes)>,
    rx: mpsc::Receiver<(Bytes, Bytes)>,
    deadline: Option<Duration>,
    max_frame: usize,
    _marker: PhantomData<fn(Tx) -> Rx>,
}

/// Creates a connected in-memory transport pair:
/// `(client endpoint, server endpoint)`.
pub fn channel_pair() -> (
    ChannelTransport<ClientMessage, ServerMessage>,
    ChannelTransport<ServerMessage, ClientMessage>,
) {
    let (to_server, from_client) = mpsc::channel();
    let (to_client, from_server) = mpsc::channel();
    (
        ChannelTransport {
            tx: to_server,
            rx: from_server,
            deadline: None,
            max_frame: DEFAULT_MAX_FRAME,
            _marker: PhantomData,
        },
        ChannelTransport {
            tx: to_client,
            rx: from_client,
            deadline: None,
            max_frame: DEFAULT_MAX_FRAME,
            _marker: PhantomData,
        },
    )
}

impl<Tx: WireMessage, Rx: WireMessage> ChannelTransport<Tx, Rx> {
    /// Nonblocking receive: decodes the next already-delivered message,
    /// if any. The event-driven server polls its channel connections
    /// with this instead of parking a thread in [`Transport::recv`].
    pub(crate) fn try_recv(&mut self) -> Result<Option<Rx>, ProtocolError> {
        match self.rx.try_recv() {
            Ok((header, body)) => Ok(Some(Rx::from_wire_parts(&header, &body, self.max_frame)?)),
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => Err(ProtocolError::Disconnected),
        }
    }

    /// Sends pre-encoded frame parts without re-serializing. The sim
    /// transport uses this after charging its link for the same parts.
    pub(crate) fn send_parts(&mut self, header: Bytes, body: Bytes) -> Result<(), ProtocolError> {
        self.tx
            .send((header, body))
            .map_err(|_| ProtocolError::Disconnected)
    }
}

impl<Tx: WireMessage, Rx: WireMessage> Transport for ChannelTransport<Tx, Rx> {
    type Tx = Tx;
    type Rx = Rx;

    fn send(&mut self, msg: &Tx) -> Result<(), ProtocolError> {
        let (header, body) = msg.to_wire_parts();
        self.send_parts(header, body)
    }

    fn recv(&mut self) -> Result<Rx, ProtocolError> {
        let (header, body) = match self.deadline {
            Some(d) => self.rx.recv_timeout(d).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => ProtocolError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => ProtocolError::Disconnected,
            })?,
            None => self.rx.recv().map_err(|_| ProtocolError::Disconnected)?,
        };
        Ok(Rx::from_wire_parts(&header, &body, self.max_frame)?)
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), ProtocolError> {
        self.deadline = deadline;
        Ok(())
    }
}

/// A [`ChannelTransport`] timed by a [`WanLink`]: every send charges
/// the link for the frame's exact byte size and advances a virtual
/// clock shared by both endpoints. This is the DES-facing transport —
/// protocol traffic acquires the same deterministic-but-jittered
/// transfer times the analytic runtime charges, while still moving
/// real bytes through the unified codec.
pub struct SimTransport<Tx, Rx> {
    inner: ChannelTransport<Tx, Rx>,
    link: Arc<Mutex<WanLink>>,
    clock: Arc<Mutex<Nanos>>,
}

/// Creates a connected simulated-WAN pair `(client, server)` with a
/// shared virtual clock. `uplink` times client→server frames,
/// `downlink` the reverse path.
pub fn sim_pair(
    uplink: WanLink,
    downlink: WanLink,
) -> (
    SimTransport<ClientMessage, ServerMessage>,
    SimTransport<ServerMessage, ClientMessage>,
) {
    let (client, server) = channel_pair();
    let clock = Arc::new(Mutex::new(Nanos(0)));
    (
        SimTransport {
            inner: client,
            link: Arc::new(Mutex::new(uplink)),
            clock: clock.clone(),
        },
        SimTransport {
            inner: server,
            link: Arc::new(Mutex::new(downlink)),
            clock,
        },
    )
}

impl<Tx, Rx> SimTransport<Tx, Rx> {
    /// Virtual time accumulated by both directions so far.
    pub fn elapsed(&self) -> Nanos {
        *self.clock.lock().expect("clock lock")
    }

    /// `(bytes, messages)` charged to this endpoint's outgoing link.
    pub fn link_stats(&self) -> (u64, u64) {
        self.link.lock().expect("link lock").stats()
    }
}

impl<Tx: WireMessage, Rx: WireMessage> SimTransport<Tx, Rx> {
    /// Nonblocking receive — see [`ChannelTransport::try_recv`].
    /// Receiving consumes no virtual time (the link was charged at
    /// send time), exactly as in the blocking path.
    pub(crate) fn try_recv(&mut self) -> Result<Option<Rx>, ProtocolError> {
        self.inner.try_recv()
    }
}

impl<Tx: WireMessage, Rx: WireMessage> Transport for SimTransport<Tx, Rx> {
    type Tx = Tx;
    type Rx = Rx;

    fn send(&mut self, msg: &Tx) -> Result<(), ProtocolError> {
        // Encode once: the same parts are charged to the link and then
        // handed to the channel (tensor bodies move by refcount).
        let (header, body) = msg.to_wire_parts();
        let bytes = (header.len() + body.len()) as u64;
        let t = self.link.lock().expect("link lock").transfer_time(bytes);
        let mut clock = self.clock.lock().expect("clock lock");
        *clock = clock.checked_add(t).expect("virtual clock overflow");
        drop(clock);
        self.inner.send_parts(header, body)
    }

    fn recv(&mut self) -> Result<Rx, ProtocolError> {
        self.inner.recv()
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> Result<(), ProtocolError> {
        self.inner.set_deadline(deadline)
    }
}

// ----------------------------------------------------------------------
// The server state machine surface
// ----------------------------------------------------------------------

/// The server side of Algorithm 1 as seen by a transport: one message
/// in, at most one reply out. `menos-core`'s `MenosServer` is the
/// full multi-client implementation (admission control, profiling,
/// shared-base registry); [`SessionHandler`] is the single-session
/// variant the in-process tests use. [`serve_loop`] drives either —
/// transports never interpret protocol state themselves.
pub trait MessageHandler {
    /// Dispatches one client message, returning the reply to send (if
    /// any).
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] scoped to the offending client; handler state
    /// for other clients must be unaffected.
    fn handle(&mut self, msg: ClientMessage) -> Result<Option<ServerMessage>, ProtocolError>;

    /// The pump lost `client`'s connection without a clean
    /// `Disconnect` — a transport fault, a deadline, or an eviction.
    ///
    /// The default synthesizes a `Disconnect`, reclaiming the session
    /// outright (the pre-lifecycle behaviour). Handlers that support
    /// reconnection override this to *quarantine* the session instead:
    /// its memory reservations are released, but adapter and optimizer
    /// state is parked for a `Resume`.
    fn connection_lost(&mut self, client: ClientId) {
        let _ = self.handle(ClientMessage::Disconnect { client });
    }

    /// Drops quarantined sessions idle for longer than `max_idle`,
    /// returning the expired clients. Handlers without a quarantine
    /// have nothing to expire.
    fn expire_idle(&mut self, max_idle: Duration) -> Vec<ClientId> {
        let _ = max_idle;
        Vec::new()
    }

    /// Serializes the handler's full durable state for a snapshot, or
    /// `None` if the handler has nothing durable (the default). The
    /// event loop calls this under its snapshot policy; handlers that
    /// support restart-recovery (the `menos-core` server) override it.
    fn snapshot_bytes(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// True while the handler wants the pump to prefer draining
    /// existing work over admitting new connections — e.g. GPU pool
    /// utilization past a watermark. Purely advisory load shedding:
    /// deferred peers wait in the listener backlog, nothing is
    /// dropped. The default never reports pressure.
    fn under_pressure(&mut self) -> bool {
        false
    }
}

/// Shared handlers: connection threads hand `Arc<Mutex<H>>` around and
/// serialize dispatch through the lock (one GPU, one state machine).
impl<H: MessageHandler> MessageHandler for Arc<Mutex<H>> {
    fn handle(&mut self, msg: ClientMessage) -> Result<Option<ServerMessage>, ProtocolError> {
        self.lock()
            .map_err(|_| ProtocolError::Unexpected("handler lock poisoned".into()))?
            .handle(msg)
    }

    fn connection_lost(&mut self, client: ClientId) {
        if let Ok(mut h) = self.lock() {
            h.connection_lost(client);
        }
    }

    fn expire_idle(&mut self, max_idle: Duration) -> Vec<ClientId> {
        match self.lock() {
            Ok(mut h) => h.expire_idle(max_idle),
            Err(_) => Vec::new(),
        }
    }

    fn snapshot_bytes(&mut self) -> Option<Vec<u8>> {
        match self.lock() {
            Ok(mut h) => h.snapshot_bytes(),
            Err(_) => None,
        }
    }

    fn under_pressure(&mut self) -> bool {
        match self.lock() {
            Ok(mut h) => h.under_pressure(),
            Err(_) => false,
        }
    }
}

/// Executes one forward or backward step of Algorithm 1 against a
/// session — the single place where protocol messages meet tensor
/// compute. Every handler (the `menos-core` server, the in-process
/// driver, [`SessionHandler`]) delegates here.
///
/// # Errors
///
/// [`ProtocolError::Wire`] if the tensor payload does not decode;
/// [`ProtocolError::OutOfOrder`] for gradients without a preceding
/// forward, or for control messages (which belong to the session's
/// owner, not the session).
pub fn dispatch_session(
    session: &mut ServerSession,
    mode: ForwardMode,
    msg: &ClientMessage,
) -> Result<ServerMessage, ProtocolError> {
    match msg {
        ClientMessage::Activations { client, frame } => {
            let x_c = session.codec().decode(frame)?;
            let x_s = match mode {
                ForwardMode::Cached => session.forward_cached(&x_c),
                ForwardMode::NoGradReforward => session.forward_nograd(&x_c),
            };
            Ok(ServerMessage::ServerActivations {
                client: *client,
                frame: session
                    .codec_mut()
                    .encode(menos_net::ROLE_ACTIVATIONS, &x_s),
            })
        }
        ClientMessage::Gradients { client, frame } => {
            let g_c = session.codec().decode(frame)?;
            // `backward` panics on protocol misuse (no preceding
            // forward); convert that into a recoverable protocol
            // error. The session mutates nothing before the check, so
            // unwinding leaves it consistent.
            let g_s =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.backward(&g_c)))
                    .map_err(|_| {
                    ProtocolError::OutOfOrder("gradients received before activations".into())
                })?;
            Ok(ServerMessage::ServerGradients {
                client: *client,
                frame: session.codec_mut().encode(menos_net::ROLE_GRADIENTS, &g_s),
            })
        }
        ClientMessage::Connect { .. }
        | ClientMessage::Resume { .. }
        | ClientMessage::Disconnect { .. }
        | ClientMessage::Ping { .. }
        | ClientMessage::ImportSession { .. } => Err(ProtocolError::OutOfOrder(
            "control message routed to a bound session".into(),
        )),
    }
}

/// A [`MessageHandler`] over one pre-built [`ServerSession`] — the
/// minimal server for single-client transports and tests. `Connect`
/// must name the session's client; `Disconnect` drops the session
/// (reclaiming its memory); tensor messages go through
/// [`dispatch_session`].
pub struct SessionHandler {
    session: Option<ServerSession>,
    mode: ForwardMode,
}

impl SessionHandler {
    /// Wraps a session built for one client.
    pub fn new(session: ServerSession, mode: ForwardMode) -> Self {
        SessionHandler {
            session: Some(session),
            mode,
        }
    }

    /// The session, if not yet disconnected.
    pub fn session(&self) -> Option<&ServerSession> {
        self.session.as_ref()
    }
}

impl MessageHandler for SessionHandler {
    fn handle(&mut self, msg: ClientMessage) -> Result<Option<ServerMessage>, ProtocolError> {
        // Heartbeats are answered regardless of session binding: a
        // monitor probes liveness, not a particular session.
        if let ClientMessage::Ping { client, seq } = msg {
            return Ok(Some(ServerMessage::Pong {
                client,
                seq,
                live_sessions: u64::from(self.session.is_some()),
                utilization_pct: 0,
            }));
        }
        let bound = self
            .session
            .as_ref()
            .map(|s| s.client())
            .ok_or_else(|| ProtocolError::UnknownClient(msg.client()))?;
        if msg.client() != bound {
            return Err(ProtocolError::UnknownClient(msg.client()));
        }
        match msg {
            ClientMessage::Connect { client, codecs, .. } => {
                let codec = menos_net::negotiate(codecs, menos_net::supported_codec_mask());
                let session = self.session.as_mut().expect("checked above");
                session.set_codec(codec);
                Ok(Some(ServerMessage::Ready { client, codec }))
            }
            ClientMessage::Disconnect { .. } => {
                self.session = None;
                Ok(None)
            }
            ClientMessage::ImportSession { .. } => Err(ProtocolError::Unexpected(
                "single-session handler cannot import sessions".into(),
            )),
            tensor_msg => {
                let session = self.session.as_mut().expect("checked above");
                dispatch_session(session, self.mode, &tensor_msg).map(Some)
            }
        }
    }
}

// ----------------------------------------------------------------------
// The two protocol pumps
// ----------------------------------------------------------------------

/// The single server-side protocol pump: receives client messages
/// from `transport`, dispatches them to `handler`, and sends replies —
/// until the client disconnects cleanly or an error ends the
/// connection.
///
/// On any failure after a successful `Connect`, the handler is fed a
/// synthetic `Disconnect` before the error propagates, so the failed
/// client's session memory is reclaimed and other clients are
/// untouched.
///
/// # Errors
///
/// The first [`ProtocolError`] from the transport or the handler.
pub fn serve_loop<T, H>(transport: &mut T, handler: &mut H) -> Result<(), ProtocolError>
where
    T: Transport<Tx = ServerMessage, Rx = ClientMessage>,
    H: MessageHandler,
{
    let mut active: Option<ClientId> = None;
    let reclaim = |handler: &mut H, active: Option<ClientId>| {
        if let Some(client) = active {
            handler.connection_lost(client);
        }
    };
    loop {
        let msg = match transport.recv() {
            Ok(msg) => msg,
            Err(e) => {
                reclaim(handler, active);
                return Err(e);
            }
        };
        let client = msg.client();
        // Resume binds the session to this connection exactly like
        // Connect: a later fault must re-quarantine it.
        let is_connect = matches!(
            msg,
            ClientMessage::Connect { .. } | ClientMessage::Resume { .. }
        );
        let is_disconnect = matches!(msg, ClientMessage::Disconnect { .. });
        let reply = match handler.handle(msg) {
            Ok(reply) => reply,
            Err(e) => {
                reclaim(handler, active);
                return Err(e);
            }
        };
        if let Some(reply) = reply {
            if let Err(e) = transport.send(&reply) {
                reclaim(handler, active);
                return Err(e);
            }
        }
        if is_connect {
            active = Some(client);
        }
        if is_disconnect {
            return Ok(());
        }
    }
}

/// The single client-side protocol loop: `Connect`/`Ready` handshake,
/// then `steps` four-step iterations (activations out, server
/// activations in, gradients out, server gradients in), then a clean
/// `Disconnect`. Returns the client's loss curve.
///
/// # Errors
///
/// The first [`ProtocolError`]; the client's local state is
/// consistent up to the last completed step.
pub fn drive_client<T>(
    client: &mut SplitClient,
    transport: &mut T,
    steps: usize,
) -> Result<LossCurve, ProtocolError>
where
    T: Transport<Tx = ClientMessage, Rx = ServerMessage>,
{
    let id = client.id();
    transport.send(&ClientMessage::Connect {
        client: id,
        ft: client.ft_config().clone(),
        split: client.split(),
        epoch: client.epoch(),
        codecs: client.advertised_codecs(),
    })?;
    match transport.recv()? {
        ServerMessage::Ready { codec, .. } => client.adopt_codec(codec),
        ServerMessage::Busy {
            client: c,
            retry_after_ms,
        } => {
            // Typed so callers with a retry policy can honor the hint;
            // this plain loop has none and simply propagates it.
            return Err(ProtocolError::Busy {
                client: c,
                retry_after_ms,
            });
        }
        ServerMessage::Redirect {
            client: c,
            addr,
            retry_after_ms,
        } => {
            // Same deal: this plain loop cannot redial, so the routed
            // placement surfaces as a typed error for the caller.
            return Err(ProtocolError::Redirected {
                client: c,
                addr,
                retry_after_ms,
            });
        }
        other => {
            return Err(ProtocolError::Unexpected(format!(
                "expected Ready, got {}",
                kind_name(&other)
            )))
        }
    }
    for _ in 0..steps {
        let x_c = client.start_step();
        let frame = client.encode_activations(&x_c);
        transport.send(&ClientMessage::Activations { client: id, frame })?;
        let x_s = match transport.recv()? {
            ServerMessage::ServerActivations { frame, .. } => client.decode_frame(&frame)?,
            other => {
                return Err(ProtocolError::Unexpected(format!(
                    "expected ServerActivations, got {}",
                    kind_name(&other)
                )))
            }
        };
        let (_loss, g_c) = client.receive_server_activations(&x_s);
        let frame = client.encode_gradients(&g_c);
        transport.send(&ClientMessage::Gradients { client: id, frame })?;
        let g_s = match transport.recv()? {
            ServerMessage::ServerGradients { frame, .. } => client.decode_frame(&frame)?,
            other => {
                return Err(ProtocolError::Unexpected(format!(
                    "expected ServerGradients, got {}",
                    kind_name(&other)
                )))
            }
        };
        client.receive_server_gradients(&g_s);
    }
    transport.send(&ClientMessage::Disconnect { client: id })?;
    Ok(client.curve().clone())
}

pub(crate) fn kind_name(msg: &ServerMessage) -> &'static str {
    match msg {
        ServerMessage::Ready { .. } => "Ready",
        ServerMessage::ServerActivations { .. } => "ServerActivations",
        ServerMessage::ServerGradients { .. } => "ServerGradients",
        ServerMessage::Resumed { .. } => "Resumed",
        ServerMessage::Evicted { .. } => "Evicted",
        ServerMessage::Busy { .. } => "Busy",
        ServerMessage::Redirect { .. } => "Redirect",
        ServerMessage::Pong { .. } => "Pong",
        ServerMessage::Imported { .. } => "Imported",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menos_adapters::FineTuneConfig;
    use menos_data::{wiki_corpus, TokenDataset, Vocab};
    use menos_models::{CausalLm, ModelConfig};
    use menos_sim::seeded_rng;

    fn pair(seed: u64) -> (SplitClient, ServerSession) {
        let text = wiki_corpus(5, 4000);
        let vocab = Vocab::from_text(&text);
        let cfg = ModelConfig::tiny_opt(33);
        let mut rng = seeded_rng(100, "protocol-test");
        let ps = menos_models::init_params(&cfg, &mut rng);
        let ds = TokenDataset::new(vocab.encode(&text), 16, 5);
        let mut ft = FineTuneConfig::paper(&cfg);
        ft.batch_size = 2;
        ft.seq_len = 16;
        let split = crate::spec::SplitSpec::paper();
        let client = SplitClient::new(
            ClientId(0),
            CausalLm::bind(&cfg, &ps.shared_view(false)),
            split,
            ft.clone(),
            ds,
            seed,
        );
        let session = ServerSession::new(
            ClientId(0),
            CausalLm::bind(&cfg, &ps.shared_view(false)),
            split,
            &ft,
            seed,
        );
        (client, session)
    }

    #[test]
    fn channel_transport_trains_through_serve_loop() {
        let (mut client, session) = pair(1);
        let (mut client_t, mut server_t) = channel_pair();
        let server = std::thread::spawn(move || {
            let mut handler = SessionHandler::new(session, ForwardMode::NoGradReforward);
            let r = serve_loop(&mut server_t, &mut handler);
            (r, handler.session().is_none())
        });
        let curve = drive_client(&mut client, &mut client_t, 3).expect("channel training");
        assert_eq!(curve.points().len(), 3);
        let (served, reclaimed) = server.join().expect("server thread");
        served.expect("clean serve");
        assert!(reclaimed, "disconnect must release the session");
    }

    #[test]
    fn sim_transport_charges_virtual_time_for_exact_bytes() {
        let (mut client, session) = pair(2);
        let (mut client_t, mut server_t) = sim_pair(WanLink::lan(1), WanLink::lan(2));
        let clock = client_t.clock.clone();
        let server = std::thread::spawn(move || {
            let mut handler = SessionHandler::new(session, ForwardMode::NoGradReforward);
            serve_loop(&mut server_t, &mut handler)
        });
        drive_client(&mut client, &mut client_t, 2).expect("sim training");
        server.join().expect("thread").expect("clean serve");
        let elapsed = *clock.lock().unwrap();
        assert!(elapsed > Nanos(0), "transfers must advance virtual time");
        let (bytes, msgs) = client_t.link_stats();
        // Connect + 2*(activations + gradients) + disconnect = 6 uplink messages.
        assert_eq!(msgs, 6);
        assert!(bytes > 0);
    }

    #[test]
    fn channel_deadline_times_out() {
        let (mut client_t, _server_t) = channel_pair();
        client_t
            .set_deadline(Some(Duration::from_millis(10)))
            .unwrap();
        // Server endpoint alive but silent → Timeout (not Disconnected).
        let err = client_t.recv().unwrap_err();
        assert!(matches!(err, ProtocolError::Timeout));
    }

    #[test]
    fn dropped_peer_is_disconnected() {
        let (mut client_t, server_t) = channel_pair();
        drop(server_t);
        assert!(matches!(
            client_t.recv().unwrap_err(),
            ProtocolError::Disconnected
        ));
        let err = client_t
            .send(&ClientMessage::Disconnect {
                client: ClientId(0),
            })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Disconnected));
    }

    #[test]
    fn session_handler_rejects_foreign_client() {
        let (_client, session) = pair(3);
        let mut handler = SessionHandler::new(session, ForwardMode::Cached);
        let err = handler
            .handle(ClientMessage::Disconnect {
                client: ClientId(9),
            })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::UnknownClient(ClientId(9))));
    }

    #[test]
    fn error_display_and_source() {
        let e = ProtocolError::Wire(WireError::Truncated);
        assert!(e.to_string().contains("wire error"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(ProtocolError::Timeout.to_string().contains("deadline"));
        assert!(ProtocolError::UnknownClient(ClientId(4))
            .to_string()
            .contains("client-4"));
        let stale = ProtocolError::StaleEpoch {
            client: ClientId(4),
            expected: 2,
            got: 1,
        };
        assert!(stale.to_string().contains("epoch 2"), "{stale}");
        assert!(ProtocolError::SessionActive(ClientId(4))
            .to_string()
            .contains("live connection"));
        let busy = ProtocolError::Busy {
            client: ClientId(4),
            retry_after_ms: 125,
        };
        assert!(busy.to_string().contains("retry after 125ms"), "{busy}");
        let redirected = ProtocolError::Redirected {
            client: ClientId(4),
            addr: "10.0.0.3:4400".into(),
            retry_after_ms: 5,
        };
        assert!(
            redirected.to_string().contains("10.0.0.3:4400"),
            "{redirected}"
        );
    }

    #[test]
    fn session_handler_answers_ping_without_a_binding() {
        let (_client, session) = pair(7);
        let mut handler = SessionHandler::new(session, ForwardMode::Cached);
        // Any client id may probe; the reply reports one live session.
        match handler
            .handle(ClientMessage::Ping {
                client: ClientId(99),
                seq: 12,
            })
            .expect("ping is always answered")
        {
            Some(ServerMessage::Pong {
                client,
                seq,
                live_sessions,
                ..
            }) => {
                assert_eq!(client, ClientId(99));
                assert_eq!(seq, 12);
                assert_eq!(live_sessions, 1);
            }
            other => panic!("expected Pong, got {other:?}"),
        }
    }

    #[test]
    fn io_error_kinds_map_to_typed_variants() {
        use std::io::{Error, ErrorKind};
        assert!(matches!(
            ProtocolError::from(Error::new(ErrorKind::TimedOut, "t")),
            ProtocolError::Timeout
        ));
        assert!(matches!(
            ProtocolError::from(Error::new(ErrorKind::UnexpectedEof, "e")),
            ProtocolError::Disconnected
        ));
        assert!(matches!(
            ProtocolError::from(Error::new(ErrorKind::Other, "o")),
            ProtocolError::Io(_)
        ));
    }
}

//! The event-driven server pump: one thread, many clients, batched
//! dispatch.
//!
//! [`serve_loop`](crate::serve_loop) parks one OS thread per client in
//! a blocking `recv`. That shape caps concurrency at the thread budget
//! and — worse for Menos — hands the compute backend one client's
//! micro-batch at a time, so the parallel matmul kernels never see the
//! large batches they were built for. This module replaces the pump,
//! not the protocol: the same encoded bytes, the same
//! [`MessageHandler`] state machine, the same error taxonomy, driven
//! by a single-threaded readiness loop.
//!
//! The pieces:
//!
//! * [`EventConn`] / [`EventListener`] — the nonblocking face of a
//!   transport: drain whatever messages are ready *now*, queue replies,
//!   flush partial writes later. Implemented by the in-memory channel
//!   and simulated-WAN transports here, and by nonblocking TCP in
//!   [`crate::tcp`] (built on `menos-net`'s `FrameAccumulator` /
//!   `WriteQueue`).
//! * [`BatchHandler`] — a [`MessageHandler`] that may accept a whole
//!   sweep's worth of ready messages at once. `menos-core`'s
//!   `MenosServer` implements it by stacking compatible clients'
//!   activations into one forward/backward; the default implementation
//!   just replays messages one by one, which keeps every handler
//!   usable under the new pump.
//! * [`ServerEventLoop`] — the pump itself: accept, sweep reads,
//!   batch-dispatch, flush, repeat. Connection failures reclaim the
//!   failed client's session (synthetic `Disconnect`) exactly like the
//!   blocking pump; other clients never notice.
//!
//! Because the lock-step protocol allows at most one outstanding
//! message per client, the batching rule is simple: collect tensor
//! messages until a sweep adds none (the ready set went quiet) or the
//! batch reaches [`EventLoopOptions::batch_window`], then dispatch the
//! whole set. While the handler computes, the replies release every
//! client in the batch; their next messages land together — so large
//! batches are self-sustaining.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::message::{ClientId, ClientMessage, EvictionCode, ServerMessage};
use crate::protocol::{
    channel_pair, sim_pair, ChannelTransport, MessageHandler, ProtocolError, SimTransport,
    Transport,
};
use menos_net::WanLink;

// ----------------------------------------------------------------------
// The nonblocking transport face
// ----------------------------------------------------------------------

/// A server-side connection the event loop can poll without blocking.
///
/// One instance exists per connected client. Unlike
/// [`Transport`](crate::Transport), nothing here parks the thread:
/// `poll_recv` drains only what has already arrived, `queue` accepts a
/// reply for (possibly deferred) transmission, and `flush` pushes
/// queued bytes until the peer stops accepting them.
pub trait EventConn {
    /// Drains every message that is ready right now into `out`.
    ///
    /// Must return buffered messages before surfacing a disconnect: if
    /// the peer sent bytes and then hung up, the messages in those
    /// bytes are delivered on this call and the error on the next.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Disconnected`] when the peer is gone and no
    /// messages remain, [`ProtocolError::Wire`] on undecodable bytes,
    /// or a transport fault. Any error is fatal to this connection.
    fn poll_recv(&mut self, out: &mut Vec<ClientMessage>) -> Result<(), ProtocolError>;

    /// Queues one reply for transmission, writing as much as the peer
    /// will immediately accept.
    ///
    /// # Errors
    ///
    /// Fatal transport faults; `WouldBlock` is not an error (the
    /// remainder is flushed later).
    fn queue(&mut self, msg: &ServerMessage) -> Result<(), ProtocolError>;

    /// Pushes queued bytes to the peer. Returns `Ok(true)` when
    /// nothing remains queued.
    ///
    /// # Errors
    ///
    /// Fatal transport faults; `WouldBlock` is not an error.
    fn flush(&mut self) -> Result<bool, ProtocolError>;

    /// True while queued bytes await a writable peer.
    fn has_queued_writes(&self) -> bool {
        false
    }

    /// Bytes currently queued awaiting a writable peer. Transports
    /// whose `queue` transmits synchronously (the in-memory channels)
    /// report 0; nonblocking TCP reports its `WriteQueue` depth. The
    /// loop's slow-consumer bound
    /// ([`EventLoopOptions::max_write_buffer`]) is enforced against
    /// this number.
    fn queued_write_bytes(&self) -> u64 {
        0
    }
}

/// A source of new [`EventConn`]s the event loop can poll without
/// blocking — the nonblocking analogue of an accept loop.
pub trait EventListener {
    /// Connection type produced by this listener.
    type Conn: EventConn;

    /// Accepts one pending connection, if any is ready.
    ///
    /// # Errors
    ///
    /// A fatal listener fault; the loop stops accepting (existing
    /// connections drain normally).
    fn poll_accept(&mut self) -> Result<Option<Self::Conn>, ProtocolError>;
}

// ----------------------------------------------------------------------
// Batched dispatch
// ----------------------------------------------------------------------

/// A [`MessageHandler`] that may process a whole ready-set of tensor
/// messages in one server step.
///
/// The event loop hands `handle_batch` every staged `Activations` /
/// `Gradients` message from clients that were ready this dispatch
/// (control messages never appear here — the loop routes them through
/// [`MessageHandler::handle`]). The handler returns one reply slot per
/// input message, keyed by client — the lock-step protocol guarantees
/// at most one outstanding message per client, so the key is
/// unambiguous. A per-client error poisons only that client: the loop
/// reclaims its session and drops its connection, exactly as a
/// transport fault would.
///
/// The default implementation replays messages one at a time through
/// `handle`, making every existing handler event-loop capable;
/// `menos-core`'s `MenosServer` overrides it to stack compatible
/// clients into one batched forward/backward.
pub trait BatchHandler: MessageHandler {
    /// Dispatches a batch of tensor messages, returning
    /// `(client, reply-or-error)` for every input message.
    fn handle_batch(
        &mut self,
        msgs: Vec<ClientMessage>,
    ) -> Vec<(ClientId, Result<Option<ServerMessage>, ProtocolError>)> {
        msgs.into_iter()
            .map(|msg| {
                let client = msg.client();
                (client, self.handle(msg))
            })
            .collect()
    }
}

/// Shared handlers batch through the lock, mirroring the
/// [`MessageHandler`] blanket impl.
impl<H: BatchHandler> BatchHandler for Arc<std::sync::Mutex<H>> {
    fn handle_batch(
        &mut self,
        msgs: Vec<ClientMessage>,
    ) -> Vec<(ClientId, Result<Option<ServerMessage>, ProtocolError>)> {
        match self.lock() {
            Ok(mut h) => h.handle_batch(msgs),
            Err(_) => msgs
                .into_iter()
                .map(|msg| {
                    (
                        msg.client(),
                        Err(ProtocolError::Unexpected("handler lock poisoned".into())),
                    )
                })
                .collect(),
        }
    }
}

impl BatchHandler for crate::protocol::SessionHandler {}

// ----------------------------------------------------------------------
// Loop configuration and observability
// ----------------------------------------------------------------------

/// Tuning knobs for [`ServerEventLoop`].
#[derive(Debug, Clone, Copy)]
pub struct EventLoopOptions {
    /// Total connections to accept before the loop stops accepting;
    /// once they all disconnect the loop exits. `usize::MAX` serves
    /// forever (stop via [`ServerEventLoop::shutdown_handle`]).
    ///
    /// Renamed from `max_clients`, which read as a concurrency cap but
    /// is a lifetime accept budget — the concurrency cap is
    /// [`capacity`](EventLoopOptions::capacity). Shed connections still
    /// consume this budget (they were accepted, then turned away).
    pub accept_limit: usize,
    /// Live-session admission cap (PROTOCOL.md §8, v1.3): a `Connect`
    /// or `Resume` arriving while this many sessions are bound to live
    /// connections is shed with [`ServerMessage::Busy`] carrying the
    /// [`busy_retry_after`](EventLoopOptions::busy_retry_after) hint,
    /// then the connection closes. No session state is touched — the
    /// client just reconnects later. `usize::MAX` (the default) never
    /// sheds. Quarantined (disconnected-but-resumable) sessions do not
    /// count — only sessions bound to a live connection.
    pub capacity: usize,
    /// The reconnect hint carried by loop-level capacity sheds.
    /// Handlers that shed on their own (pool admission) carry their
    /// own hint in [`ProtocolError::Busy`].
    pub busy_retry_after: Duration,
    /// Per-connection bound on queued-but-unsent reply bytes. A
    /// consumer stalled past it is evicted and its session quarantined
    /// exactly like an `io_timeout` eviction, so one stalled peer can
    /// never balloon server memory. `None` (the default) keeps the
    /// pre-v1.3 unbounded behaviour.
    pub max_write_buffer: Option<u64>,
    /// Per-connection bound on tensor messages staged for batch
    /// dispatch — the message-level analogue of
    /// `FrameAccumulator::with_staged_cap`. Lock-step traffic stages
    /// at most one message per connection, so any excess is a
    /// protocol violation; the offender is dropped with a typed
    /// [`StagedOverflow`](menos_net::WireError::StagedOverflow) and
    /// its staged messages are purged.
    pub max_staged_msgs: usize,
    /// Dispatch the pending batch as soon as it reaches this many
    /// messages, even if more clients look ready.
    pub batch_window: usize,
    /// Floor of the idle-backoff ladder: the first sleep after a sweep
    /// that made no progress. Keep small — it is the idle-path latency
    /// floor.
    pub idle_sleep: Duration,
    /// Ceiling of the idle-backoff ladder: consecutive idle sweeps
    /// double the sleep up to this bound, so a quiet server does not
    /// busy-spin at the floor cadence forever. Any readiness snaps the
    /// ladder back to `idle_sleep`.
    pub max_idle_sleep: Duration,
    /// Evict a connection silent for longer than this (`None` waits
    /// forever). The evicted client gets a best-effort
    /// [`ServerMessage::Evicted`] notice and its session is handed to
    /// [`MessageHandler::connection_lost`] — under `MenosServer` that
    /// quarantines it for later resumption rather than dropping it.
    pub io_timeout: Option<Duration>,
    /// How long a quarantined (disconnected but resumable) session may
    /// sit idle before [`MessageHandler::expire_idle`] reaps it
    /// (`None` keeps parked sessions forever).
    pub max_session_idle: Option<Duration>,
}

impl Default for EventLoopOptions {
    fn default() -> Self {
        EventLoopOptions {
            accept_limit: usize::MAX,
            capacity: usize::MAX,
            busy_retry_after: Duration::from_millis(100),
            max_write_buffer: None,
            max_staged_msgs: 8,
            batch_window: 32,
            idle_sleep: Duration::from_micros(200),
            max_idle_sleep: Duration::from_millis(2),
            io_timeout: None,
            max_session_idle: None,
        }
    }
}

/// The sweep loop's adaptive idle backoff: a sleep ladder that starts
/// at a floor, doubles on every consecutive idle sweep up to a
/// ceiling, and snaps back to the floor the moment any sweep makes
/// progress.
///
/// This replaces a fixed idle sleep, which forced a hard choice
/// between busy-polling a quiet server (floor too low) and adding
/// latency to every lock-step round-trip (floor too high): under load
/// the ladder never leaves the floor, and a quiet server climbs to the
/// ceiling within a handful of sweeps.
#[derive(Debug, Clone, Copy)]
pub struct IdleBackoff {
    floor: Duration,
    ceil: Duration,
    current: Duration,
}

impl IdleBackoff {
    /// Builds a ladder over `[floor, ceil]` (a ceiling below the floor
    /// is clamped up to it), starting at the floor.
    pub fn new(floor: Duration, ceil: Duration) -> Self {
        let ceil = ceil.max(floor);
        IdleBackoff {
            floor,
            ceil,
            current: floor,
        }
    }

    /// The sleep the next idle sweep would take.
    pub fn current(&self) -> Duration {
        self.current
    }

    /// Snaps back to the floor — call on any readiness.
    pub fn reset(&mut self) {
        self.current = self.floor;
    }

    /// Returns the sleep for this idle sweep and climbs one rung.
    pub fn next_sleep(&mut self) -> Duration {
        let sleep = self.current;
        self.current = (self.current * 2).min(self.ceil);
        sleep
    }
}

/// Where and how often the event loop persists the handler's durable
/// state (see [`MessageHandler::snapshot_bytes`]).
///
/// Snapshots land in `dir` as a single `server.snap` file, written
/// atomically: bytes go to `server.snap.tmp`, are fsynced, and the tmp
/// file is renamed over the live one — a crash mid-write leaves the
/// previous snapshot intact, so the file on disk is always a complete,
/// CRC-sealed state (never a torn one).
///
/// `every == 0` selects **durable** mode: a snapshot is taken after
/// every state-advancing dispatch, *before* the corresponding replies
/// are released to clients. That ordering is what makes
/// kill-the-server recovery divergence-free — a client can only have
/// observed a reply whose effects are already on disk, so replaying
/// through the v1.1 `Resume` reconciliation lands on exactly the state
/// the client saw. `every == N > 0` snapshots after every N
/// dispatches (plus once at loop exit), trading bounded replay work
/// for lower I/O.
#[derive(Debug, Clone)]
pub struct SnapshotPolicy {
    dir: PathBuf,
    every: u64,
}

/// File name of the live snapshot inside the policy directory.
const SNAPSHOT_FILE: &str = "server.snap";

impl SnapshotPolicy {
    /// Durable mode: snapshot before every reply release (`every = 0`).
    pub fn durable(dir: impl Into<PathBuf>) -> Self {
        SnapshotPolicy {
            dir: dir.into(),
            every: 0,
        }
    }

    /// Periodic mode: snapshot after every `every` dispatches and at
    /// loop exit. `every == 0` degenerates to [`durable`](Self::durable).
    pub fn periodic(dir: impl Into<PathBuf>, every: u64) -> Self {
        SnapshotPolicy {
            dir: dir.into(),
            every,
        }
    }

    /// The dispatch cadence (0 = durable).
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Path of the live snapshot file under this policy's directory.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    /// Atomically replaces the live snapshot with `bytes`
    /// (tmp file + `write_all` + `sync_all` + rename).
    ///
    /// # Errors
    ///
    /// Any I/O fault creating the directory, writing, syncing, or
    /// renaming. On error the previous snapshot (if any) is untouched.
    pub fn write(&self, bytes: &[u8]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join("server.snap.tmp");
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.snapshot_path())
    }

    /// Reads the live snapshot under `dir`, if one exists. Validation
    /// is the caller's job (snapshot bytes are CRC-sealed and decode
    /// through the typed checkpoint path).
    pub fn read(dir: impl AsRef<Path>) -> Option<Vec<u8>> {
        std::fs::read(dir.as_ref().join(SNAPSHOT_FILE)).ok()
    }
}

/// Counters describing one [`ServerEventLoop::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EventLoopStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Clients that disconnected cleanly.
    pub served: u64,
    /// Connections dropped on error or timeout (sessions reclaimed).
    pub conn_errors: u64,
    /// Batch dispatches issued.
    pub batches: u64,
    /// Tensor messages dispatched across all batches.
    pub batched_messages: u64,
    /// Largest single batch.
    pub max_batch: usize,
    /// Readiness sweeps executed.
    pub sweeps: u64,
    /// Connections evicted for exceeding the client timeout.
    pub evicted: u64,
    /// Sessions successfully re-attached via `Resume`.
    pub resumed: u64,
    /// Quarantined sessions reaped by the idle TTL.
    pub expired: u64,
    /// Snapshots written successfully (see [`SnapshotPolicy`]).
    pub snapshots: u64,
    /// Snapshot attempts that failed (I/O fault); the loop keeps
    /// serving — durability degrades, training does not stop.
    pub snapshot_errors: u64,
    /// Connections shed at admission with a [`ServerMessage::Busy`]
    /// reply — by the loop's [`EventLoopOptions::capacity`] cap or by
    /// the handler returning [`ProtocolError::Busy`] (v1.3).
    pub shed: u64,
    /// Connections evicted for stalling past
    /// [`EventLoopOptions::max_write_buffer`].
    pub write_overflows: u64,
    /// Connections dropped for staging more than
    /// [`EventLoopOptions::max_staged_msgs`] tensor messages.
    pub staged_overflows: u64,
    /// Sweeps that deferred accepting because the handler reported
    /// memory pressure (drain existing work before admitting more).
    pub deferred_accept_sweeps: u64,
    /// High-water mark of sessions bound to live connections — the
    /// number [`EventLoopOptions::capacity`] bounds.
    pub max_live_sessions: usize,
    /// High-water mark of any single connection's queued write bytes,
    /// observed after each flush — the number
    /// [`EventLoopOptions::max_write_buffer`] bounds.
    pub max_queued_write_bytes: u64,
    /// v1.4 heartbeat probes answered with `Pong`.
    pub pings: u64,
    /// v1.4 migrated sessions accepted via `ImportSession` and parked
    /// for their owner's `Resume`.
    pub sessions_imported: u64,
}

// ----------------------------------------------------------------------
// The pump
// ----------------------------------------------------------------------

struct ConnState<C> {
    conn: C,
    /// Bound after a successful `Connect`.
    client: Option<ClientId>,
    last_activity: Instant,
}

/// The single-threaded, event-driven replacement for one
/// [`serve_loop`](crate::serve_loop) thread per client: owns every
/// client connection, sweeps them for ready messages, and dispatches
/// the ready set to a [`BatchHandler`] as one batch.
///
/// Protocol behaviour is identical to the blocking pump — same codec,
/// same handler state machine, same disconnect-reclamation on error —
/// only the scheduling differs.
pub struct ServerEventLoop<L: EventListener, H: BatchHandler> {
    listener: L,
    handler: H,
    options: EventLoopOptions,
    snapshots: Option<SnapshotPolicy>,
    shutdown: Arc<AtomicBool>,
}

impl<L: EventListener, H: BatchHandler> ServerEventLoop<L, H> {
    /// Builds a loop over a listener and a handler.
    pub fn new(listener: L, handler: H, options: EventLoopOptions) -> Self {
        ServerEventLoop {
            listener,
            handler,
            options,
            snapshots: None,
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Persists the handler's durable state per `policy` (handlers
    /// that return `None` from
    /// [`MessageHandler::snapshot_bytes`] are simply never
    /// snapshotted). A final snapshot is always written when the loop
    /// exits, whatever the cadence.
    #[must_use]
    pub fn with_snapshots(mut self, policy: SnapshotPolicy) -> Self {
        self.snapshots = Some(policy);
        self
    }

    /// A flag that stops the loop at the next sweep (live sessions are
    /// reclaimed first).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Runs until `accept_limit` connections have been accepted and
    /// all of them have disconnected (or the shutdown flag is raised).
    /// Returns the handler and the run's counters.
    pub fn run(self) -> (H, EventLoopStats) {
        let ServerEventLoop {
            mut listener,
            mut handler,
            options,
            snapshots,
            shutdown,
        } = self;
        let mut stats = EventLoopStats::default();
        // BTreeMap: sweeps visit connections in a deterministic order.
        let mut conns: BTreeMap<u64, ConnState<L::Conn>> = BTreeMap::new();
        let mut next_key: u64 = 0;
        let mut accepted: usize = 0;
        let mut done_accepting = false;
        // Tensor messages staged for the next batch dispatch, tagged
        // with the connection that produced them.
        let mut pending: Vec<(u64, ClientMessage)> = Vec::new();
        let mut ready: Vec<ClientMessage> = Vec::new();
        // Reply routing for batch dispatches, reused across steps so
        // the steady-state sweep → dispatch → flush cycle allocates
        // nothing (frame staging is likewise pooled inside each
        // connection's accumulator).
        let mut key_of: HashMap<ClientId, u64> = HashMap::new();

        let mut backoff = IdleBackoff::new(options.idle_sleep, options.max_idle_sleep);
        let mut last_expiry_check = Instant::now();

        // Drops a connection and hands its session to the handler's
        // lost-connection path, leaving every other client untouched —
        // the event-loop analogue of `serve_loop`'s error path. Under
        // `MenosServer` the session is quarantined for resumption; the
        // default hook synthesizes a `Disconnect`, preserving the old
        // reclaim-on-error behaviour for plain handlers.
        //
        // Staged-but-undispatched messages from the dead connection are
        // purged with it: dispatching them later would advance the
        // session behind the client's back — fatal once the client
        // resumes and redoes the step the server already half-ran.
        fn fail_conn<C, H: BatchHandler>(
            conns: &mut BTreeMap<u64, ConnState<C>>,
            handler: &mut H,
            stats: &mut EventLoopStats,
            pending: &mut Vec<(u64, ClientMessage)>,
            key: u64,
        ) {
            if let Some(state) = conns.remove(&key) {
                stats.conn_errors += 1;
                pending.retain(|(k, _)| *k != key);
                if let Some(client) = state.client {
                    handler.connection_lost(client);
                }
            }
        }

        // Turns away a connection at admission (v1.3, PROTOCOL.md §8):
        // best-effort `Busy` reply with the retry hint, then the
        // connection closes. Deliberately NOT `fail_conn` — no session
        // was created, so there is nothing to quarantine, and a shed
        // is load management, not a connection error.
        fn shed_conn<C: EventConn>(
            conns: &mut BTreeMap<u64, ConnState<C>>,
            stats: &mut EventLoopStats,
            pending: &mut Vec<(u64, ClientMessage)>,
            key: u64,
            client: ClientId,
            retry_after_ms: u64,
        ) {
            if let Some(mut state) = conns.remove(&key) {
                stats.shed += 1;
                pending.retain(|(k, _)| *k != key);
                let notice = ServerMessage::Busy {
                    client,
                    retry_after_ms,
                };
                if state.conn.queue(&notice).is_ok() {
                    let _ = state.conn.flush();
                }
            }
        }

        // Stages one tensor message for batch dispatch, enforcing the
        // per-connection cap — the message-level analogue of
        // `FrameAccumulator::with_staged_cap`. Lock-step traffic never
        // stages more than one message per connection, so hitting the
        // cap means the peer is violating the protocol (or a fault is
        // duplicating frames); the caller drops it via `fail_conn`,
        // which also purges what it had staged.
        fn stage_tensor(
            pending: &mut Vec<(u64, ClientMessage)>,
            key: u64,
            msg: ClientMessage,
            cap: usize,
        ) -> Result<(), ProtocolError> {
            let staged = pending.iter().filter(|(k, _)| *k == key).count();
            if staged >= cap {
                return Err(ProtocolError::Wire(menos_net::WireError::StagedOverflow {
                    needed: staged as u64 + 1,
                    cap: cap as u64,
                }));
            }
            pending.push((key, msg));
            Ok(())
        }

        // Persists the handler's state after a state-advancing
        // dispatch, *before* the replies it produced are queued. In
        // durable mode (`every == 0`) every dispatch snapshots —
        // clients then can never observe a reply whose effects are not
        // on disk, which is the invariant behind bit-identical
        // kill-the-server recovery. Periodic mode counts dispatches.
        // Quarantine/eviction mutations deliberately do NOT snapshot
        // here: restoring a pre-quarantine superset is safe (the
        // restore path parks every session anyway).
        fn snapshot_after_dispatch<H: BatchHandler>(
            handler: &mut H,
            stats: &mut EventLoopStats,
            policy: Option<&SnapshotPolicy>,
            since: &mut u64,
        ) {
            let Some(policy) = policy else { return };
            *since += 1;
            if policy.every() != 0 && *since < policy.every() {
                return;
            }
            *since = 0;
            if let Some(bytes) = handler.snapshot_bytes() {
                match policy.write(&bytes) {
                    Ok(()) => stats.snapshots += 1,
                    Err(_e) => stats.snapshot_errors += 1,
                }
            }
        }
        let mut since_snapshot: u64 = 0;

        loop {
            stats.sweeps += 1;
            let mut progress = false;

            if shutdown.load(Ordering::Relaxed) {
                for (_, mut state) in std::mem::take(&mut conns) {
                    if let Some(client) = state.client {
                        // Best-effort courtesy notice; the session is
                        // parked (or reclaimed) regardless.
                        let notice = ServerMessage::Evicted {
                            client,
                            code: EvictionCode::Shutdown,
                        };
                        if state.conn.queue(&notice).is_ok() {
                            let _ = state.conn.flush();
                        }
                        handler.connection_lost(client);
                    }
                }
                break;
            }

            // Phase 1: accept whatever is knocking — unless the
            // handler reports memory pressure and there is existing
            // work to drain, in which case new connections wait in the
            // listener's backlog this sweep. Degrading admission under
            // pressure beats accepting work the pool cannot hold.
            let defer_accepts = !conns.is_empty() && handler.under_pressure();
            if defer_accepts {
                stats.deferred_accept_sweeps += 1;
            }
            while !defer_accepts && !done_accepting && accepted < options.accept_limit {
                match listener.poll_accept() {
                    Ok(Some(conn)) => {
                        conns.insert(
                            next_key,
                            ConnState {
                                conn,
                                client: None,
                                last_activity: Instant::now(),
                            },
                        );
                        next_key += 1;
                        accepted += 1;
                        stats.accepted += 1;
                        progress = true;
                    }
                    Ok(None) => break,
                    Err(_) => {
                        done_accepting = true;
                    }
                }
            }

            // Phase 2: sweep every connection for ready messages.
            // Control messages dispatch inline (they are cheap and
            // order-sensitive); tensor messages stage for the batch.
            let mut new_tensor = 0usize;
            let keys: Vec<u64> = conns.keys().copied().collect();
            for key in keys {
                ready.clear();
                let recv = {
                    let state = conns.get_mut(&key).expect("swept key exists");
                    state.conn.poll_recv(&mut ready)
                };
                if let Err(_e) = recv {
                    fail_conn(&mut conns, &mut handler, &mut stats, &mut pending, key);
                    continue;
                }
                if !ready.is_empty() {
                    progress = true;
                    if let Some(state) = conns.get_mut(&key) {
                        state.last_activity = Instant::now();
                    }
                }
                for msg in ready.drain(..) {
                    match msg {
                        msg @ (ClientMessage::Connect { .. } | ClientMessage::Resume { .. }) => {
                            let client = msg.client();
                            let is_resume = matches!(msg, ClientMessage::Resume { .. });
                            // v1.3 admission: shed at the door when
                            // live sessions are at capacity. The
                            // handler is never consulted, so no
                            // session state is created or mutated —
                            // shedding is idempotent.
                            let unbound = conns.get(&key).is_some_and(|s| s.client.is_none());
                            if unbound {
                                let live = conns.values().filter(|s| s.client.is_some()).count();
                                if live >= options.capacity {
                                    shed_conn(
                                        &mut conns,
                                        &mut stats,
                                        &mut pending,
                                        key,
                                        client,
                                        options.busy_retry_after.as_millis() as u64,
                                    );
                                    break;
                                }
                            }
                            match handler.handle(msg) {
                                Ok(reply) => {
                                    // Admission mutated durable state
                                    // (session created or re-attached);
                                    // persist before the reply can
                                    // reach the client.
                                    snapshot_after_dispatch(
                                        &mut handler,
                                        &mut stats,
                                        snapshots.as_ref(),
                                        &mut since_snapshot,
                                    );
                                    conns
                                        .get_mut(&key)
                                        .expect("conn alive during connect")
                                        .client = Some(client);
                                    if is_resume {
                                        stats.resumed += 1;
                                    }
                                    let live =
                                        conns.values().filter(|s| s.client.is_some()).count();
                                    stats.max_live_sessions = stats.max_live_sessions.max(live);
                                    if let Some(reply) = reply {
                                        let state =
                                            conns.get_mut(&key).expect("conn alive during connect");
                                        if state.conn.queue(&reply).is_err() {
                                            fail_conn(
                                                &mut conns,
                                                &mut handler,
                                                &mut stats,
                                                &mut pending,
                                                key,
                                            );
                                            break;
                                        }
                                    }
                                }
                                Err(ProtocolError::Busy { retry_after_ms, .. }) => {
                                    // The handler shed at its own
                                    // admission gate (Alg. 2: the
                                    // reservation would oversubscribe
                                    // the pool right now) — same wire
                                    // outcome as the loop-level cap,
                                    // with the handler's hint.
                                    shed_conn(
                                        &mut conns,
                                        &mut stats,
                                        &mut pending,
                                        key,
                                        client,
                                        retry_after_ms,
                                    );
                                    break;
                                }
                                Err(e) => {
                                    // A resume for state the TTL already
                                    // reaped gets a courtesy notice so the
                                    // client stops retrying.
                                    if is_resume && matches!(e, ProtocolError::UnknownClient(_)) {
                                        if let Some(state) = conns.get_mut(&key) {
                                            let notice = ServerMessage::Evicted {
                                                client,
                                                code: EvictionCode::IdleExpired,
                                            };
                                            if state.conn.queue(&notice).is_ok() {
                                                let _ = state.conn.flush();
                                            }
                                        }
                                    }
                                    // Rejected (validation/admission,
                                    // stale epoch, live session):
                                    // drop the connection; the peer
                                    // observes a disconnect, same as
                                    // the blocking pump.
                                    fail_conn(
                                        &mut conns,
                                        &mut handler,
                                        &mut stats,
                                        &mut pending,
                                        key,
                                    );
                                    break;
                                }
                            }
                        }
                        msg @ ClientMessage::Disconnect { .. } => {
                            let _ = handler.handle(msg);
                            snapshot_after_dispatch(
                                &mut handler,
                                &mut stats,
                                snapshots.as_ref(),
                                &mut since_snapshot,
                            );
                            if conns.remove(&key).is_some() {
                                stats.served += 1;
                            }
                            break;
                        }
                        // v1.4 heartbeat: answered inline — no session
                        // state is touched, so no snapshot, and the
                        // connection stays unbound (a monitor's probe
                        // must not occupy a live-session slot).
                        msg @ ClientMessage::Ping { .. } => match handler.handle(msg) {
                            Ok(Some(reply)) => {
                                stats.pings += 1;
                                let state = conns.get_mut(&key).expect("conn alive during ping");
                                if state.conn.queue(&reply).is_err() {
                                    fail_conn(
                                        &mut conns,
                                        &mut handler,
                                        &mut stats,
                                        &mut pending,
                                        key,
                                    );
                                    break;
                                }
                            }
                            _ => {
                                fail_conn(&mut conns, &mut handler, &mut stats, &mut pending, key);
                                break;
                            }
                        },
                        // v1.4 migration: an imported session parks in
                        // quarantine (durable state mutated → snapshot
                        // before the ack), but the *pushing* connection
                        // — the coordinator — does not bind to it; the
                        // owning client resumes over its own connection.
                        msg @ ClientMessage::ImportSession { .. } => match handler.handle(msg) {
                            Ok(Some(reply)) => {
                                stats.sessions_imported += 1;
                                snapshot_after_dispatch(
                                    &mut handler,
                                    &mut stats,
                                    snapshots.as_ref(),
                                    &mut since_snapshot,
                                );
                                let state = conns.get_mut(&key).expect("conn alive during import");
                                if state.conn.queue(&reply).is_err() {
                                    fail_conn(
                                        &mut conns,
                                        &mut handler,
                                        &mut stats,
                                        &mut pending,
                                        key,
                                    );
                                    break;
                                }
                            }
                            _ => {
                                // A rejected import closes the pushing
                                // connection: the coordinator observes
                                // the drop as a typed failure, and the
                                // handler committed nothing.
                                fail_conn(&mut conns, &mut handler, &mut stats, &mut pending, key);
                                break;
                            }
                        },
                        tensor => {
                            match stage_tensor(&mut pending, key, tensor, options.max_staged_msgs) {
                                Ok(()) => new_tensor += 1,
                                Err(_overflow) => {
                                    // Typed StagedOverflow: the peer
                                    // outran lock-step. Drop it and
                                    // purge what it staged — exactly
                                    // the fail_conn path, counted
                                    // separately for observability.
                                    stats.staged_overflows += 1;
                                    fail_conn(
                                        &mut conns,
                                        &mut handler,
                                        &mut stats,
                                        &mut pending,
                                        key,
                                    );
                                    break;
                                }
                            }
                        }
                    }
                }
            }

            // Phase 3: dispatch the batch once the ready set goes
            // quiet (no new tensor message this sweep) or the window
            // fills. Lock-step ⇒ each pending client is stalled until
            // its reply, so "quiet" means everyone ready has reported.
            let dispatch =
                !pending.is_empty() && (new_tensor == 0 || pending.len() >= options.batch_window);
            if dispatch {
                progress = true;
                let batch = std::mem::take(&mut pending);
                stats.batches += 1;
                stats.batched_messages += batch.len() as u64;
                stats.max_batch = stats.max_batch.max(batch.len());
                key_of.clear();
                key_of.extend(batch.iter().map(|(k, m)| (m.client(), *k)));
                let results = handler.handle_batch(batch.into_iter().map(|(_, m)| m).collect());
                // Training steps advanced; in durable mode the replies
                // below must not leave before the state that produced
                // them is on disk.
                snapshot_after_dispatch(
                    &mut handler,
                    &mut stats,
                    snapshots.as_ref(),
                    &mut since_snapshot,
                );
                for (client, result) in results {
                    let Some(&key) = key_of.get(&client) else {
                        continue;
                    };
                    match result {
                        Ok(Some(reply)) => {
                            let alive = match conns.get_mut(&key) {
                                Some(state) => state.conn.queue(&reply).is_ok(),
                                None => continue,
                            };
                            if !alive {
                                fail_conn(&mut conns, &mut handler, &mut stats, &mut pending, key);
                            }
                        }
                        Ok(None) => {}
                        Err(_e) => {
                            fail_conn(&mut conns, &mut handler, &mut stats, &mut pending, key);
                        }
                    }
                }
            }

            // Phase 4: flush partial writes; enforce silence timeouts.
            let keys: Vec<u64> = conns.keys().copied().collect();
            for key in keys {
                let state = conns.get_mut(&key).expect("flushed key exists");
                if state.conn.has_queued_writes() {
                    match state.conn.flush() {
                        Ok(drained) => {
                            if drained {
                                progress = true;
                            }
                        }
                        Err(_e) => {
                            fail_conn(&mut conns, &mut handler, &mut stats, &mut pending, key);
                            continue;
                        }
                    }
                }
                // Slow-consumer bound: whatever survived the flush is
                // what the peer refused to take. A stalled consumer is
                // evicted (session quarantined, resumable later) —
                // bounded memory beats waiting on a peer that may
                // never drain.
                let queued = conns
                    .get(&key)
                    .map(|s| s.conn.queued_write_bytes())
                    .unwrap_or(0);
                stats.max_queued_write_bytes = stats.max_queued_write_bytes.max(queued);
                if let Some(limit) = options.max_write_buffer {
                    if queued > limit {
                        stats.write_overflows += 1;
                        stats.evicted += 1;
                        fail_conn(&mut conns, &mut handler, &mut stats, &mut pending, key);
                        continue;
                    }
                }
                if let Some(limit) = options.io_timeout {
                    let state = conns.get_mut(&key).expect("timeout key exists");
                    if state.last_activity.elapsed() > limit {
                        // Best-effort eviction notice before the drop;
                        // the session is quarantined via fail_conn.
                        if let Some(client) = state.client {
                            let notice = ServerMessage::Evicted {
                                client,
                                code: EvictionCode::Timeout,
                            };
                            if state.conn.queue(&notice).is_ok() {
                                let _ = state.conn.flush();
                            }
                        }
                        stats.evicted += 1;
                        fail_conn(&mut conns, &mut handler, &mut stats, &mut pending, key);
                    }
                }
            }

            // Phase 5: reap quarantined sessions past the idle TTL.
            // Checked on a coarse cadence — expiry precision does not
            // need sweep-frequency polling.
            if let Some(ttl) = options.max_session_idle {
                let cadence = (ttl / 4).clamp(Duration::from_millis(1), Duration::from_millis(100));
                if last_expiry_check.elapsed() >= cadence {
                    last_expiry_check = Instant::now();
                    stats.expired += handler.expire_idle(ttl).len() as u64;
                }
            }

            if (done_accepting || accepted >= options.accept_limit)
                && conns.is_empty()
                && pending.is_empty()
            {
                break;
            }
            if progress {
                backoff.reset();
            } else {
                std::thread::sleep(backoff.next_sleep());
            }
        }
        // Final snapshot at exit, whatever the cadence: a clean
        // shutdown (including the shutdown-flag branch, which
        // quarantines every live session first) always leaves the
        // latest state on disk.
        if let Some(policy) = &snapshots {
            if let Some(bytes) = handler.snapshot_bytes() {
                match policy.write(&bytes) {
                    Ok(()) => stats.snapshots += 1,
                    Err(_e) => stats.snapshot_errors += 1,
                }
            }
        }
        (handler, stats)
    }
}

// ----------------------------------------------------------------------
// In-memory listeners: channel and simulated-WAN dialers
// ----------------------------------------------------------------------

/// An [`EventListener`] over an in-process queue of pre-built
/// connections — how the channel and simulated-WAN transports reach
/// the event loop without sockets.
pub struct QueueListener<C> {
    rx: mpsc::Receiver<C>,
}

impl<C: EventConn> EventListener for QueueListener<C> {
    type Conn = C;

    fn poll_accept(&mut self) -> Result<Option<C>, ProtocolError> {
        match self.rx.try_recv() {
            Ok(conn) => Ok(Some(conn)),
            // All dialers dropped just means no further connections —
            // not a fault.
            Err(mpsc::TryRecvError::Empty) | Err(mpsc::TryRecvError::Disconnected) => Ok(None),
        }
    }
}

/// Client-side factory for in-memory connections to an event loop —
/// the channel analogue of a TCP `connect`. Clone freely; one dialer
/// per client thread.
#[derive(Clone)]
pub struct ChannelDialer {
    tx: mpsc::Sender<ChannelTransport<ServerMessage, ClientMessage>>,
}

impl ChannelDialer {
    /// Opens a new connection, returning the client endpoint.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Disconnected`] when the event loop is gone.
    pub fn dial(&self) -> Result<ChannelTransport<ClientMessage, ServerMessage>, ProtocolError> {
        let (client, server) = channel_pair();
        self.tx
            .send(server)
            .map_err(|_| ProtocolError::Disconnected)?;
        Ok(client)
    }
}

/// Creates a connected `(dialer, listener)` pair for in-memory channel
/// transports: the listener feeds a [`ServerEventLoop`], the dialer
/// mints client endpoints for [`drive_client`](crate::drive_client).
pub fn event_channel_listener() -> (
    ChannelDialer,
    QueueListener<ChannelTransport<ServerMessage, ClientMessage>>,
) {
    let (tx, rx) = mpsc::channel();
    (ChannelDialer { tx }, QueueListener { rx })
}

/// Client-side factory for simulated-WAN connections to an event
/// loop. Each dial carries its own uplink/downlink [`WanLink`], so
/// heterogeneous client networks share one server.
#[derive(Clone)]
pub struct SimDialer {
    tx: mpsc::Sender<SimTransport<ServerMessage, ClientMessage>>,
}

impl SimDialer {
    /// Opens a new simulated connection with the given link timings,
    /// returning the client endpoint.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Disconnected`] when the event loop is gone.
    pub fn dial(
        &self,
        uplink: WanLink,
        downlink: WanLink,
    ) -> Result<SimTransport<ClientMessage, ServerMessage>, ProtocolError> {
        let (client, server) = sim_pair(uplink, downlink);
        self.tx
            .send(server)
            .map_err(|_| ProtocolError::Disconnected)?;
        Ok(client)
    }
}

/// Creates a connected `(dialer, listener)` pair for simulated-WAN
/// transports — the [`event_channel_listener`] analogue with per-dial
/// link timing.
pub fn event_sim_listener() -> (
    SimDialer,
    QueueListener<SimTransport<ServerMessage, ClientMessage>>,
) {
    let (tx, rx) = mpsc::channel();
    (SimDialer { tx }, QueueListener { rx })
}

impl EventConn for ChannelTransport<ServerMessage, ClientMessage> {
    fn poll_recv(&mut self, out: &mut Vec<ClientMessage>) -> Result<(), ProtocolError> {
        loop {
            match self.try_recv() {
                Ok(Some(msg)) => out.push(msg),
                Ok(None) => return Ok(()),
                // Deliver buffered messages first; the error resurfaces
                // on the next sweep.
                Err(e) => return if out.is_empty() { Err(e) } else { Ok(()) },
            }
        }
    }

    fn queue(&mut self, msg: &ServerMessage) -> Result<(), ProtocolError> {
        Transport::send(self, msg)
    }

    fn flush(&mut self) -> Result<bool, ProtocolError> {
        Ok(true)
    }
}

impl EventConn for SimTransport<ServerMessage, ClientMessage> {
    fn poll_recv(&mut self, out: &mut Vec<ClientMessage>) -> Result<(), ProtocolError> {
        loop {
            match self.try_recv() {
                Ok(Some(msg)) => out.push(msg),
                Ok(None) => return Ok(()),
                Err(e) => return if out.is_empty() { Err(e) } else { Ok(()) },
            }
        }
    }

    fn queue(&mut self, msg: &ServerMessage) -> Result<(), ProtocolError> {
        // Charges the downlink's virtual transfer time, identical to
        // the blocking pump's reply path.
        Transport::send(self, msg)
    }

    fn flush(&mut self) -> Result<bool, ProtocolError> {
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SplitClient;
    use crate::driver::ForwardMode;
    use crate::protocol::{drive_client, SessionHandler};
    use crate::server::ServerSession;
    use crate::spec::SplitSpec;
    use menos_adapters::FineTuneConfig;
    use menos_data::{wiki_corpus, TokenDataset, Vocab};
    use menos_models::{CausalLm, ModelConfig};
    use menos_sim::seeded_rng;

    fn pair(seed: u64) -> (SplitClient, ServerSession) {
        let text = wiki_corpus(5, 4000);
        let vocab = Vocab::from_text(&text);
        let cfg = ModelConfig::tiny_opt(33);
        let mut rng = seeded_rng(100, "event-loop-test");
        let ps = menos_models::init_params(&cfg, &mut rng);
        let ds = TokenDataset::new(vocab.encode(&text), 16, 5);
        let mut ft = FineTuneConfig::paper(&cfg);
        ft.batch_size = 2;
        ft.seq_len = 16;
        let split = SplitSpec::paper();
        let client = SplitClient::new(
            ClientId(0),
            CausalLm::bind(&cfg, &ps.shared_view(false)),
            split,
            ft.clone(),
            ds,
            seed,
        );
        let session = ServerSession::new(
            ClientId(0),
            CausalLm::bind(&cfg, &ps.shared_view(false)),
            split,
            &ft,
            seed,
        );
        (client, session)
    }

    #[test]
    fn event_loop_serves_a_channel_client_end_to_end() {
        let (mut client, session) = pair(7);
        let (dialer, listener) = event_channel_listener();
        let handler = SessionHandler::new(session, ForwardMode::NoGradReforward);
        let event_loop = ServerEventLoop::new(
            listener,
            handler,
            EventLoopOptions {
                accept_limit: 1,
                ..EventLoopOptions::default()
            },
        );
        let server = std::thread::spawn(move || event_loop.run());
        let mut transport = dialer.dial().expect("dial");
        let curve = drive_client(&mut client, &mut transport, 3).expect("training");
        assert_eq!(curve.points().len(), 3);
        let (handler, stats) = server.join().expect("loop thread");
        assert!(handler.session().is_none(), "disconnect reclaims session");
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.served, 1);
        assert_eq!(stats.conn_errors, 0);
        // 3 steps × (activations + gradients) = 6 tensor messages.
        assert_eq!(stats.batched_messages, 6);
    }

    #[test]
    fn mid_training_drop_reclaims_the_session() {
        let (mut client, session) = pair(8);
        let (dialer, listener) = event_channel_listener();
        let handler = SessionHandler::new(session, ForwardMode::NoGradReforward);
        let event_loop = ServerEventLoop::new(
            listener,
            handler,
            EventLoopOptions {
                accept_limit: 1,
                ..EventLoopOptions::default()
            },
        );
        let server = std::thread::spawn(move || event_loop.run());
        let mut transport = dialer.dial().expect("dial");
        // One clean step, then vanish without a Disconnect.
        drive_client(&mut client, &mut transport, 1).ok();
        // drive_client sent Disconnect; redo manually for the abrupt
        // variant: dial a second loop instead.
        drop(transport);
        let (handler, stats) = server.join().expect("loop thread");
        assert!(handler.session().is_none());
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.served + stats.conn_errors, 1);
    }

    #[test]
    fn shutdown_flag_stops_an_unbounded_loop() {
        let (_dialer, listener) = event_channel_listener();
        let (_client, session) = pair(9);
        let handler = SessionHandler::new(session, ForwardMode::NoGradReforward);
        let event_loop = ServerEventLoop::new(listener, handler, EventLoopOptions::default());
        let stop = event_loop.shutdown_handle();
        let server = std::thread::spawn(move || event_loop.run());
        stop.store(true, Ordering::Relaxed);
        let (_handler, stats) = server.join().expect("loop thread");
        assert_eq!(stats.accepted, 0);
    }

    #[test]
    fn idle_backoff_climbs_to_the_ceiling_and_resets_under_load() {
        let floor = Duration::from_micros(200);
        let ceil = Duration::from_millis(2);
        let mut b = IdleBackoff::new(floor, ceil);
        // Idle sweeps double the sleep: 200µs, 400µs, 800µs, 1.6ms,
        // then clamp at the 2ms ceiling.
        let ladder: Vec<Duration> = (0..6).map(|_| b.next_sleep()).collect();
        assert_eq!(
            ladder,
            vec![
                Duration::from_micros(200),
                Duration::from_micros(400),
                Duration::from_micros(800),
                Duration::from_micros(1600),
                Duration::from_millis(2),
                Duration::from_millis(2),
            ]
        );
        assert_eq!(b.current(), ceil);
        // Any readiness snaps back to the floor — a loaded loop never
        // pays more than the floor latency.
        b.reset();
        assert_eq!(b.current(), floor);
        assert_eq!(b.next_sleep(), floor);
        // A ceiling below the floor is clamped up, never inverting.
        let mut odd = IdleBackoff::new(Duration::from_millis(5), Duration::from_millis(1));
        assert_eq!(odd.next_sleep(), Duration::from_millis(5));
        assert_eq!(odd.current(), Duration::from_millis(5));
    }

    fn scratch_dir(label: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("menos-snap-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn snapshot_policy_writes_atomically_and_reads_back() {
        let dir = scratch_dir("policy");
        assert!(SnapshotPolicy::read(&dir).is_none());
        let policy = SnapshotPolicy::durable(&dir);
        assert_eq!(policy.every(), 0);
        policy.write(b"first").expect("write");
        assert_eq!(SnapshotPolicy::read(&dir).unwrap(), b"first");
        // Replacement is whole-file: the longer payload fully
        // supersedes the shorter one and no tmp residue remains.
        policy.write(b"second, longer payload").expect("rewrite");
        assert_eq!(
            SnapshotPolicy::read(&dir).unwrap(),
            b"second, longer payload"
        );
        assert!(!dir.join("server.snap.tmp").exists());
        assert_eq!(SnapshotPolicy::periodic(&dir, 16).every(), 16);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A [`SessionHandler`] wrapper that versions its state: every
    /// dispatch bumps a counter, and snapshots carry the counter —
    /// letting the test pin exactly *when* the loop persisted.
    struct VersionedHandler {
        inner: SessionHandler,
        version: u64,
    }

    impl MessageHandler for VersionedHandler {
        fn handle(&mut self, msg: ClientMessage) -> Result<Option<ServerMessage>, ProtocolError> {
            self.version += 1;
            self.inner.handle(msg)
        }

        fn snapshot_bytes(&mut self) -> Option<Vec<u8>> {
            Some(self.version.to_le_bytes().to_vec())
        }
    }

    impl BatchHandler for VersionedHandler {}

    #[test]
    fn durable_mode_snapshots_every_dispatch_and_at_exit() {
        let dir = scratch_dir("durable");
        let (mut client, session) = pair(11);
        let (dialer, listener) = event_channel_listener();
        let handler = VersionedHandler {
            inner: SessionHandler::new(session, ForwardMode::NoGradReforward),
            version: 0,
        };
        let event_loop = ServerEventLoop::new(
            listener,
            handler,
            EventLoopOptions {
                accept_limit: 1,
                ..EventLoopOptions::default()
            },
        )
        .with_snapshots(SnapshotPolicy::durable(&dir));
        let server = std::thread::spawn(move || event_loop.run());
        let mut transport = dialer.dial().expect("dial");
        drive_client(&mut client, &mut transport, 2).expect("training");
        let (handler, stats) = server.join().expect("loop thread");
        // Connect + 2×(activations, gradients) + Disconnect = 6
        // dispatched messages; durable mode snapshots Connect,
        // Disconnect, and each batch, plus the exit snapshot.
        assert_eq!(handler.version, 6);
        assert!(
            stats.snapshots >= 4,
            "expected connect+batches+disconnect+exit snapshots, got {}",
            stats.snapshots
        );
        assert_eq!(stats.snapshot_errors, 0);
        // The on-disk snapshot is the *final* version: nothing
        // advanced after the last persisted state.
        let bytes = SnapshotPolicy::read(&dir).expect("snapshot exists");
        assert_eq!(bytes, 6u64.to_le_bytes().to_vec());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn periodic_mode_counts_dispatches_but_always_snapshots_at_exit() {
        let dir = scratch_dir("periodic");
        let (mut client, session) = pair(12);
        let (dialer, listener) = event_channel_listener();
        let handler = VersionedHandler {
            inner: SessionHandler::new(session, ForwardMode::NoGradReforward),
            version: 0,
        };
        let event_loop = ServerEventLoop::new(
            listener,
            handler,
            EventLoopOptions {
                accept_limit: 1,
                ..EventLoopOptions::default()
            },
        )
        // Cadence larger than the run's dispatch count: only the exit
        // snapshot fires.
        .with_snapshots(SnapshotPolicy::periodic(&dir, 1000));
        let server = std::thread::spawn(move || event_loop.run());
        let mut transport = dialer.dial().expect("dial");
        drive_client(&mut client, &mut transport, 2).expect("training");
        let (handler, stats) = server.join().expect("loop thread");
        assert_eq!(stats.snapshots, 1, "only the exit snapshot");
        let bytes = SnapshotPolicy::read(&dir).expect("snapshot exists");
        assert_eq!(bytes, handler.version.to_le_bytes().to_vec());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn handlers_without_durable_state_produce_no_snapshot_file() {
        let dir = scratch_dir("none");
        let (mut client, session) = pair(13);
        let (dialer, listener) = event_channel_listener();
        // Plain SessionHandler: snapshot_bytes() is the default None.
        let handler = SessionHandler::new(session, ForwardMode::NoGradReforward);
        let event_loop = ServerEventLoop::new(
            listener,
            handler,
            EventLoopOptions {
                accept_limit: 1,
                ..EventLoopOptions::default()
            },
        )
        .with_snapshots(SnapshotPolicy::durable(&dir));
        let server = std::thread::spawn(move || event_loop.run());
        let mut transport = dialer.dial().expect("dial");
        drive_client(&mut client, &mut transport, 1).expect("training");
        let (_handler, stats) = server.join().expect("loop thread");
        assert_eq!(stats.snapshots, 0);
        assert_eq!(stats.snapshot_errors, 0);
        assert!(SnapshotPolicy::read(&dir).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A bare `Connect` for manual handshakes (SessionHandler ignores
    /// the ft/split beyond the client id and codec mask).
    fn connect_msg(c: u64) -> ClientMessage {
        let cfg = ModelConfig::tiny_opt(33);
        ClientMessage::Connect {
            client: ClientId(c),
            ft: FineTuneConfig::paper(&cfg),
            split: SplitSpec::paper(),
            epoch: 1,
            codecs: 0,
        }
    }

    #[test]
    fn capacity_sheds_surplus_connects_with_busy() {
        let (_client, session) = pair(20);
        let (dialer, listener) = event_channel_listener();
        let handler = SessionHandler::new(session, ForwardMode::NoGradReforward);
        let event_loop = ServerEventLoop::new(
            listener,
            handler,
            EventLoopOptions {
                accept_limit: 2,
                capacity: 1,
                busy_retry_after: Duration::from_millis(42),
                ..EventLoopOptions::default()
            },
        );
        let server = std::thread::spawn(move || event_loop.run());
        let mut a = dialer.dial().expect("dial a");
        Transport::send(&mut a, &connect_msg(0)).expect("connect a");
        assert!(matches!(a.recv(), Ok(ServerMessage::Ready { .. })));
        // The second session hits the capacity cap: a Busy with the
        // loop's hint, then a clean close — never a hang, and the
        // handler is never consulted.
        let mut b = dialer.dial().expect("dial b");
        Transport::send(&mut b, &connect_msg(1)).expect("connect b");
        assert!(matches!(
            b.recv(),
            Ok(ServerMessage::Busy {
                client: ClientId(1),
                retry_after_ms: 42,
            })
        ));
        assert!(b.recv().is_err(), "shed connection is closed");
        // The live client was untouched by the shed.
        Transport::send(
            &mut a,
            &ClientMessage::Disconnect {
                client: ClientId(0),
            },
        )
        .expect("disconnect a");
        let (_handler, stats) = server.join().expect("loop thread");
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.served, 1);
        assert_eq!(stats.conn_errors, 0, "a shed is not a connection error");
        assert_eq!(stats.max_live_sessions, 1);
    }

    #[test]
    fn accept_limit_bounds_accepts_independently_of_capacity() {
        // accept_limit 1 with unlimited capacity: the second dial is
        // simply never accepted (no shed — the knobs are distinct).
        let (mut client, session) = pair(21);
        let (dialer, listener) = event_channel_listener();
        let handler = SessionHandler::new(session, ForwardMode::NoGradReforward);
        let event_loop = ServerEventLoop::new(
            listener,
            handler,
            EventLoopOptions {
                accept_limit: 1,
                ..EventLoopOptions::default()
            },
        );
        let server = std::thread::spawn(move || event_loop.run());
        let mut a = dialer.dial().expect("dial a");
        let curve = drive_client(&mut client, &mut a, 1).expect("training");
        assert_eq!(curve.points().len(), 1);
        let (_handler, stats) = server.join().expect("loop thread");
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.shed, 0);
    }

    /// A hostile peer that emits tensor messages every sweep without
    /// ever waiting for replies — the lock-step violation the staged
    /// cap exists for.
    struct DripConn {
        per_sweep: usize,
    }

    impl EventConn for DripConn {
        fn poll_recv(&mut self, out: &mut Vec<ClientMessage>) -> Result<(), ProtocolError> {
            for _ in 0..self.per_sweep {
                out.push(ClientMessage::Activations {
                    client: ClientId(9),
                    frame: bytes::Bytes::new(),
                });
            }
            Ok(())
        }

        fn queue(&mut self, _msg: &ServerMessage) -> Result<(), ProtocolError> {
            Ok(())
        }

        fn flush(&mut self) -> Result<bool, ProtocolError> {
            Ok(true)
        }
    }

    /// Accepts everything, replies to nothing — staging is the loop's
    /// job, and these tests only watch the loop.
    struct NullHandler;

    impl MessageHandler for NullHandler {
        fn handle(&mut self, _msg: ClientMessage) -> Result<Option<ServerMessage>, ProtocolError> {
            Ok(None)
        }
    }

    impl BatchHandler for NullHandler {}

    #[test]
    fn slow_drip_past_the_staged_cap_drops_the_offender() {
        let (tx, rx) = mpsc::channel();
        tx.send(DripConn { per_sweep: 3 }).expect("queue conn");
        drop(tx);
        let event_loop = ServerEventLoop::new(
            QueueListener { rx },
            NullHandler,
            EventLoopOptions {
                accept_limit: 1,
                max_staged_msgs: 4,
                // A window the drip never reaches: the cap must fire
                // first, or pending grows until dispatch masks the bug.
                batch_window: 1000,
                ..EventLoopOptions::default()
            },
        );
        let (_handler, stats) = event_loop.run();
        assert_eq!(stats.staged_overflows, 1);
        assert_eq!(stats.conn_errors, 1, "the offender is failed, not served");
        assert_eq!(stats.batches, 0, "nothing it staged was ever dispatched");
    }

    /// A peer whose write side never drains — the slow consumer the
    /// write-buffer bound evicts.
    struct StalledConn {
        sent_connect: bool,
        queued: u64,
    }

    impl EventConn for StalledConn {
        fn poll_recv(&mut self, out: &mut Vec<ClientMessage>) -> Result<(), ProtocolError> {
            if !self.sent_connect {
                self.sent_connect = true;
                out.push(connect_msg(0));
            }
            Ok(())
        }

        fn queue(&mut self, msg: &ServerMessage) -> Result<(), ProtocolError> {
            self.queued += msg.wire_bytes();
            Ok(())
        }

        fn flush(&mut self) -> Result<bool, ProtocolError> {
            Ok(false)
        }

        fn has_queued_writes(&self) -> bool {
            self.queued > 0
        }

        fn queued_write_bytes(&self) -> u64 {
            self.queued
        }
    }

    #[test]
    fn stalled_consumer_is_evicted_by_the_write_buffer_bound() {
        let (_client, session) = pair(22);
        let (tx, rx) = mpsc::channel();
        tx.send(StalledConn {
            sent_connect: false,
            queued: 0,
        })
        .expect("queue conn");
        drop(tx);
        let handler = SessionHandler::new(session, ForwardMode::NoGradReforward);
        let event_loop = ServerEventLoop::new(
            QueueListener { rx },
            handler,
            EventLoopOptions {
                accept_limit: 1,
                max_write_buffer: Some(100),
                ..EventLoopOptions::default()
            },
        );
        let (handler, stats) = event_loop.run();
        // The Ready reply (a 256-byte control frame) stalls past the
        // 100-byte bound: evicted via the quarantine path, memory
        // bounded, loop exits.
        assert_eq!(stats.write_overflows, 1);
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.max_queued_write_bytes, 256);
        assert!(
            handler.session().is_none(),
            "the stalled client's session went through connection_lost"
        );
    }

    #[test]
    fn default_batch_handler_replays_sequentially() {
        struct Echo(Vec<ClientId>);
        impl MessageHandler for Echo {
            fn handle(
                &mut self,
                msg: ClientMessage,
            ) -> Result<Option<ServerMessage>, ProtocolError> {
                self.0.push(msg.client());
                Ok(None)
            }
        }
        impl BatchHandler for Echo {}
        let mut h = Echo(Vec::new());
        let out = h.handle_batch(vec![
            ClientMessage::Disconnect {
                client: ClientId(3),
            },
            ClientMessage::Disconnect {
                client: ClientId(1),
            },
        ]);
        assert_eq!(h.0, vec![ClientId(3), ClientId(1)]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|(_, r)| matches!(r, Ok(None))));
    }
}

//! Per-client server-side session: forward/backward over the server's
//! block range, with both memory policies' execution paths.

use std::ops::Range;

use menos_adapters::{build_optimizer, inject_adapters, FineTuneConfig, OptimState, Optimizer};
use menos_models::CausalLm;
use menos_net::TensorCodec;
use menos_sim::seeded_rng;
use menos_tensor::{
    load_checkpoint, no_grad, restore_into, save_checkpoint, CheckpointError, GradStore,
    ParamStore, SectionReader, SectionWriter, Tensor,
};

use crate::codec::{decode_config, encode_config};
use crate::message::ClientId;
use crate::spec::SplitSpec;

struct CachedForward {
    x_c_leaf: Tensor,
    x_s: Tensor,
}

/// One client's serving state on the split server (real engine).
///
/// The session owns a per-client model *structure* (typically bound to
/// a [`menos_tensor::ParamStore::shared_view`] of the base weights),
/// the client's adapters, and the adapter optimizer. It supports both
/// execution paths of the paper's Fig. 3:
///
/// * [`ServerSession::forward_cached`] — gradient-ready forward that
///   caches the graph (vanilla / memory-preserving policies);
/// * [`ServerSession::forward_nograd`] — no-grad forward that caches
///   only the raw input `x_c`, requiring a *re-forward* in
///   [`ServerSession::backward`] (Menos' on-demand policy).
///
/// Both paths produce bit-identical training updates, which the tests
/// verify — the policies trade memory for recomputation, never
/// correctness.
pub struct ServerSession {
    client: ClientId,
    model: CausalLm,
    range: Range<usize>,
    ft: FineTuneConfig,
    split: SplitSpec,
    seed: u64,
    adapter_params: ParamStore,
    optimizer: Box<dyn Optimizer>,
    cached: Option<CachedForward>,
    pending_input: Option<Tensor>,
    accum: Option<GradStore>,
    micro: usize,
    grad_accumulation: usize,
    reforward_count: u64,
    steps: u64,
    codec: TensorCodec,
}

// Section tags of the serialized session container.
const TAG_SESSION_META: u32 = 1;
const TAG_SESSION_CONFIG: u32 = 2;
const TAG_SESSION_ADAPTERS: u32 = 3;
const TAG_SESSION_OPTIM: u32 = 4;
const TAG_SESSION_ACCUM: u32 = 5;
const TAG_SESSION_CODEC: u32 = 6;

impl ServerSession {
    /// Creates a session for `client` over `model` (a structure bound
    /// to the shared base), injecting adapters into the server block
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if the configurations are invalid for the model.
    pub fn new(
        client: ClientId,
        mut model: CausalLm,
        split: SplitSpec,
        ft: &FineTuneConfig,
        seed: u64,
    ) -> Self {
        split.validate(&model.config).expect("invalid split spec");
        let range = split.server_range(&model.config);
        let mut rng = seeded_rng(seed, "server-adapters");
        let adapter_params = inject_adapters(&mut model, range.clone(), ft, &mut rng);
        let optimizer = build_optimizer(ft, adapter_params.tensors().cloned().collect());
        ServerSession {
            client,
            model,
            range,
            ft: ft.clone(),
            split,
            seed,
            adapter_params,
            optimizer,
            cached: None,
            pending_input: None,
            accum: None,
            micro: 0,
            grad_accumulation: ft.grad_accumulation.max(1),
            reforward_count: 0,
            steps: 0,
            codec: TensorCodec::default(),
        }
    }

    /// Serializes everything needed to rebuild this session on a fresh
    /// server process: the fine-tune/split configuration and seed (so
    /// the deterministic structure can be re-derived), adapter values,
    /// optimizer moments, counters, and any partial gradient
    /// accumulation.
    ///
    /// The in-flight autograd graph (`cached`/`pending_input`) is
    /// deliberately *not* serialized: the v1.1 `Resume` reconciliation
    /// makes the client redo an unacknowledged step, so a restored
    /// session only ever needs completed-step state.
    #[must_use]
    pub fn to_state(&self) -> Vec<u8> {
        let mut meta = Vec::new();
        meta.extend(self.client.0.to_le_bytes());
        meta.extend(self.seed.to_le_bytes());
        meta.extend(self.steps.to_le_bytes());
        meta.extend(self.reforward_count.to_le_bytes());
        meta.extend((self.micro as u64).to_le_bytes());
        let mut w = SectionWriter::new();
        w.section(TAG_SESSION_META, meta);
        w.section(TAG_SESSION_CONFIG, encode_config(&self.ft, self.split, 0));
        w.section(TAG_SESSION_ADAPTERS, save_checkpoint(&self.adapter_params));
        w.section(TAG_SESSION_OPTIM, self.optimizer.to_state().to_bytes());
        // v1.2: the negotiated codec plus its error-feedback residual
        // accumulators. A restored server that zeroed the residuals
        // would silently change the lossy trajectory, so they are full
        // session state (DESIGN.md §4.12). Written unconditionally:
        // the raw default is 2 bytes and keeps restores simple.
        w.section(TAG_SESSION_CODEC, self.codec.to_state());
        if let Some(acc) = &self.accum {
            // Gradients are keyed by tensor identity, which does not
            // survive a process restart — persist them by parameter
            // name and re-key on restore.
            let mut grads = ParamStore::new();
            for (name, p) in self.adapter_params.iter() {
                if let Some(g) = acc.get(p) {
                    grads.insert(name.clone(), g.detach());
                }
            }
            w.section(TAG_SESSION_ACCUM, save_checkpoint(&grads));
        }
        w.finish()
    }

    /// Rebuilds a session from [`to_state`](Self::to_state) bytes over
    /// a fresh model structure bound to the shared base.
    ///
    /// The structure is re-derived deterministically from the recorded
    /// configuration and seed (adapter injection order is the
    /// `ParamStore`'s name order), then the recorded values overwrite
    /// the seed-initialized ones — so the restored session is
    /// bit-identical to the snapshotted one.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on corrupt bytes or a configuration
    /// inconsistent with `model`; never panics on untrusted input.
    pub fn from_state(model: CausalLm, bytes: &[u8]) -> Result<ServerSession, CheckpointError> {
        let r = SectionReader::parse(bytes)?;
        let meta = r.require(TAG_SESSION_META)?;
        if meta.len() != 40 {
            return Err(CheckpointError::Corrupt(format!(
                "session meta of {} bytes",
                meta.len()
            )));
        }
        let word = |i: usize| u64::from_le_bytes(meta[i * 8..(i + 1) * 8].try_into().expect("8"));
        let (client, seed, steps, reforwards, micro) =
            (word(0), word(1), word(2), word(3), word(4));
        let (ft, split, _) = decode_config(r.require(TAG_SESSION_CONFIG)?)
            .map_err(|e| CheckpointError::Corrupt(format!("session config: {e}")))?;
        ft.validate(&model.config)
            .map_err(|e| CheckpointError::Corrupt(format!("fine-tune config: {e}")))?;
        split
            .validate(&model.config)
            .map_err(|e| CheckpointError::Corrupt(format!("split spec: {e}")))?;

        let mut session = ServerSession::new(ClientId(client), model, split, &ft, seed);
        let adapters = load_checkpoint(r.require(TAG_SESSION_ADAPTERS)?)?;
        if adapters.len() != session.adapter_params.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{} adapter parameters recorded, structure has {}",
                adapters.len(),
                session.adapter_params.len()
            )));
        }
        restore_into(&session.adapter_params, &adapters)?;
        session
            .optimizer
            .restore_state(OptimState::from_bytes(r.require(TAG_SESSION_OPTIM)?)?)?;
        if micro >= session.grad_accumulation as u64 {
            return Err(CheckpointError::Corrupt(format!(
                "micro-step {micro} with grad_accumulation {}",
                session.grad_accumulation
            )));
        }
        session.steps = steps;
        session.reforward_count = reforwards;
        session.micro = micro as usize;
        if let Some(acc_bytes) = r.find(TAG_SESSION_ACCUM) {
            let grads = load_checkpoint(acc_bytes)?;
            let mut acc = GradStore::new();
            for (name, g) in grads.iter() {
                let p = session
                    .adapter_params
                    .get(name)
                    .ok_or_else(|| CheckpointError::MissingParam(name.clone()))?;
                if p.dims() != g.dims() {
                    return Err(CheckpointError::ShapeMismatch {
                        name: name.clone(),
                        expected: p.dims().to_vec(),
                        actual: g.dims().to_vec(),
                    });
                }
                acc.insert(p, g.detach());
            }
            session.accum = Some(acc);
        }
        // Tolerant read: pre-v1.2 snapshots have no codec section and
        // restore as the raw baseline.
        if let Some(codec_bytes) = r.find(TAG_SESSION_CODEC) {
            session.codec = TensorCodec::from_state(codec_bytes)
                .map_err(|e| CheckpointError::Corrupt(format!("session codec: {e}")))?;
        }
        Ok(session)
    }

    /// The fine-tune configuration this session was created with.
    pub fn ft_config(&self) -> &FineTuneConfig {
        &self.ft
    }

    /// The split specification this session was created with.
    pub fn split(&self) -> SplitSpec {
        self.split
    }

    /// The client this session serves.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// The server-side block range.
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    /// The session's adapter parameters (for sharing assertions and
    /// accounting).
    pub fn adapter_params(&self) -> &ParamStore {
        &self.adapter_params
    }

    /// Bytes of adapter parameters plus optimizer state — the per-client
    /// persistent footprint `A + O`.
    pub fn persistent_bytes(&self) -> u64 {
        self.adapter_params.size_bytes() + self.optimizer.state_bytes()
    }

    /// Whether a gradient-ready graph is currently cached.
    pub fn has_cached_graph(&self) -> bool {
        self.cached.is_some()
    }

    /// How many re-forward passes this session has executed (Menos'
    /// extra computation; paper Table 2).
    pub fn reforward_count(&self) -> u64 {
        self.reforward_count
    }

    /// Completed optimization steps.
    pub fn steps_completed(&self) -> u64 {
        self.steps
    }

    /// The underlying model structure.
    pub fn model(&self) -> &CausalLm {
        &self.model
    }

    /// The session's negotiated tensor codec (shared ref: decode).
    pub fn codec(&self) -> &TensorCodec {
        &self.codec
    }

    /// The session's negotiated tensor codec (mutable: encode, which
    /// advances error-feedback residuals).
    pub fn codec_mut(&mut self) -> &mut TensorCodec {
        &mut self.codec
    }

    /// Installs the codec negotiated at Connect time, dropping any
    /// residuals if the scheme changed.
    pub fn set_codec(&mut self, codec: menos_net::Codec) {
        self.codec.set_codec(codec);
    }

    /// Gradient-ready forward (Fig. 3a/b): caches the graph so backward
    /// can run without recomputation.
    pub fn forward_cached(&mut self, x_c: &Tensor) -> Tensor {
        let x_c_leaf =
            Tensor::from_shared_storage(x_c.storage().clone(), x_c.shape().clone(), true);
        let x_s = self.model.blocks_forward(&x_c_leaf, self.range.clone());
        let out = x_s.detach();
        self.cached = Some(CachedForward { x_c_leaf, x_s });
        self.pending_input = None;
        out
    }

    /// No-grad forward (Fig. 3d): produces `x_s` without caching
    /// anything for backward; only the raw `x_c` is kept for the
    /// re-forward.
    pub fn forward_nograd(&mut self, x_c: &Tensor) -> Tensor {
        let out = no_grad(|| self.model.blocks_forward(&x_c.detach(), self.range.clone()));
        self.pending_input = Some(x_c.detach());
        self.cached = None;
        out
    }

    /// Backward from the client's gradients `g_c`, returning `g_s` and
    /// applying the server-side adapter optimizer (Alg. 1 lines 10-13).
    ///
    /// Re-forwards first if the preceding forward ran no-grad.
    ///
    /// # Panics
    ///
    /// Panics if no forward preceded this call.
    pub fn backward(&mut self, g_c: &Tensor) -> Tensor {
        let cached = match self.cached.take() {
            Some(c) => c,
            None => {
                let x_c = self
                    .pending_input
                    .take()
                    .expect("backward without a preceding forward");
                self.reforward_count += 1;
                let x_c_leaf =
                    Tensor::from_shared_storage(x_c.storage().clone(), x_c.shape().clone(), true);
                let x_s = self.model.blocks_forward(&x_c_leaf, self.range.clone());
                CachedForward { x_c_leaf, x_s }
            }
        };
        let mut grads = cached.x_s.backward_with_grad(g_c);
        let g_s = grads
            .remove(&cached.x_c_leaf)
            .expect("gradient for client activations");
        // Gradient accumulation mirrors the client's schedule: both
        // sides step their optimizers on the same micro-step.
        match &mut self.accum {
            Some(acc) => acc.merge(grads),
            None => self.accum = Some(grads),
        }
        self.micro += 1;
        if self.micro >= self.grad_accumulation {
            let mut acc = self.accum.take().expect("accumulated grads");
            if self.grad_accumulation > 1 {
                acc.scale(1.0 / self.grad_accumulation as f32);
            }
            self.optimizer.step(&acc);
            self.micro = 0;
        }
        self.steps += 1;
        g_s
    }

    /// The raw `x_c` held for a pending re-forward (set by the no-grad
    /// forward path; consumed by backward).
    pub fn pending_input(&self) -> Option<&Tensor> {
        self.pending_input.as_ref()
    }

    /// Records that this session's no-grad forward ran inside a
    /// cross-client stacked batch: the stacked pass already produced
    /// this client's `x_s` band, so only [`ServerSession::forward_nograd`]'s
    /// bookkeeping remains — keep `x_c` for the re-forward, drop any
    /// cached graph.
    pub fn note_batched_forward(&mut self, x_c: &Tensor) {
        self.pending_input = Some(x_c.detach());
        self.cached = None;
    }

    /// Completes this session's share of a stacked batched backward.
    ///
    /// The caller re-forwarded the whole stacked batch and ran one
    /// fused backward; `grads` holds gradients for *every* member's
    /// adapter parameters. This drains this session's own parameters'
    /// gradients out of `grads` and applies the same
    /// accumulation/step schedule as [`ServerSession::backward`] —
    /// row-bitwise-invariant kernels make the drained gradients
    /// bit-identical to a solo backward, so the resulting adapter
    /// updates are too.
    ///
    /// # Panics
    ///
    /// Panics if no forward preceded this call.
    pub fn apply_batched_backward(&mut self, grads: &mut GradStore) {
        assert!(
            self.pending_input.take().is_some(),
            "batched backward without a preceding forward"
        );
        self.reforward_count += 1;
        // Only this session's adapter gradients matter: the optimizer
        // looks up its own params by tensor identity, so the filtered
        // store steps identically to the solo path's full store.
        let mut own = GradStore::new();
        for p in self.adapter_params.tensors() {
            if let Some(g) = grads.remove(p) {
                own.insert(p, g);
            }
        }
        match &mut self.accum {
            Some(acc) => acc.merge(own),
            None => self.accum = Some(own),
        }
        self.micro += 1;
        if self.micro >= self.grad_accumulation {
            let mut acc = self.accum.take().expect("accumulated grads");
            if self.grad_accumulation > 1 {
                acc.scale(1.0 / self.grad_accumulation as f32);
            }
            self.optimizer.step(&acc);
            self.micro = 0;
        }
        self.steps += 1;
    }

    /// Drops any cached state (used when a task is released between
    /// protocol steps).
    pub fn release(&mut self) {
        self.cached = None;
    }
}

impl std::fmt::Debug for ServerSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerSession")
            .field("client", &self.client)
            .field("range", &self.range)
            .field("steps", &self.steps)
            .field("reforwards", &self.reforward_count)
            .field("cached", &self.cached.is_some())
            .finish()
    }
}

//! Synchronous protocol drivers: a logical (untimed) split fine-tuning
//! loop and the local fine-tuning baseline.
//!
//! These drivers establish *correctness* — split training must be
//! numerically identical to local training, and Menos' re-forward
//! policy must be identical to the cached policy. Timed multi-client
//! execution lives in `menos-core`.

use menos_adapters::{build_optimizer, inject_adapters, FineTuneConfig};
use menos_data::{LossCurve, TokenDataset};
use menos_models::{causal_lm_loss, CausalLm};
use menos_net::DEFAULT_MAX_FRAME;
use menos_sim::seeded_rng;

use crate::client::SplitClient;
use crate::message::{ClientMessage, ServerMessage};
use crate::server::ServerSession;
use crate::spec::SplitSpec;

/// Which forward path the server uses (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardMode {
    /// Gradient-ready forward, graph cached until backward (vanilla).
    Cached,
    /// No-grad forward with re-forward at backward time (Menos).
    NoGradReforward,
}

/// Runs `steps` split fine-tuning iterations between one client and its
/// server session, round-tripping every message through the unified
/// codec (so the exchanged bytes are exactly what a deployment would
/// move) and executing the server side through the same
/// [`dispatch_session`](crate::protocol::dispatch_session) state
/// machine every transport-backed server uses.
///
/// Returns the client's loss curve.
///
/// # Panics
///
/// Panics on a protocol error — with a co-located, well-behaved
/// client/session pair every message decodes and arrives in order, so
/// a failure here is a bug, not a runtime condition.
pub fn run_split_steps(
    client: &mut SplitClient,
    session: &mut ServerSession,
    mode: ForwardMode,
    steps: usize,
) -> LossCurve {
    use crate::codec::{
        decode_client_message, decode_server_message, encode_client_message, encode_server_message,
    };
    use crate::protocol::dispatch_session;

    let id = client.id();
    // One in-process exchange: encode → decode (the exact wire bytes)
    // → dispatch through the shared state machine.
    let exchange = |session: &mut ServerSession, msg: ClientMessage| -> ServerMessage {
        let msg = decode_client_message(&encode_client_message(&msg), DEFAULT_MAX_FRAME)
            .expect("client frame");
        let reply = dispatch_session(session, mode, &msg).expect("server dispatch");
        decode_server_message(&encode_server_message(&reply), DEFAULT_MAX_FRAME)
            .expect("server frame")
    };

    for _ in 0..steps {
        // Steps 1+2: client forward; server forward on the decoded
        // activations, activations back. Both directions go through
        // the per-party negotiated codecs (raw by default).
        let x_c = client.start_step();
        let frame = client.encode_activations(&x_c);
        let reply = exchange(session, ClientMessage::Activations { client: id, frame });
        let ServerMessage::ServerActivations { frame, .. } = reply else {
            unreachable!("dispatch_session answers activations with activations");
        };
        let x_s = client.decode_frame(&frame).expect("x_s payload");

        // Steps 3+4: client loss + gradients over the wire; server
        // backward (re-forwarding if needed), gradients back, both
        // sides step their optimizers.
        let (_loss, g_c) = client.receive_server_activations(&x_s);
        let frame = client.encode_gradients(&g_c);
        let reply = exchange(session, ClientMessage::Gradients { client: id, frame });
        let ServerMessage::ServerGradients { frame, .. } = reply else {
            unreachable!("dispatch_session answers gradients with gradients");
        };
        let g_s = client.decode_frame(&frame).expect("g_s payload");
        client.receive_server_gradients(&g_s);
    }
    client.curve().clone()
}

/// Local (non-split) adapter fine-tuning of the full model — the dashed
/// baseline in the paper's convergence figures.
///
/// To make local runs comparable with split runs, adapters are injected
/// in two groups with the same derived seeds the split parties use:
/// client blocks from `seeded_rng(seed, "client-adapters")`, server
/// blocks from `seeded_rng(seed, "server-adapters")`.
pub fn local_finetune(
    model: CausalLm,
    split: SplitSpec,
    ft: &FineTuneConfig,
    dataset: &TokenDataset,
    seed: u64,
    steps: usize,
) -> LossCurve {
    local_finetune_returning_model(model, split, ft, dataset, seed, steps).0
}

/// [`local_finetune`] that also hands back the trained model (with its
/// adapters), e.g. for held-out evaluation.
pub fn local_finetune_returning_model(
    mut model: CausalLm,
    split: SplitSpec,
    ft: &FineTuneConfig,
    dataset: &TokenDataset,
    seed: u64,
    steps: usize,
) -> (LossCurve, CausalLm) {
    let mut client_rng = seeded_rng(seed, "client-adapters");
    let mut server_rng = seeded_rng(seed, "server-adapters");
    let server_range = split.server_range(&model.config);
    let client_params = inject_adapters(&mut model, split.client_range(), ft, &mut client_rng);
    let server_params = inject_adapters(&mut model, server_range, ft, &mut server_rng);
    // Two optimizers, mirroring the two parties (identical math to one
    // optimizer over the union for element-wise rules like Adam/SGD).
    let mut client_opt = build_optimizer(ft, client_params.tensors().cloned().collect());
    let mut server_opt = build_optimizer(ft, server_params.tensors().cloned().collect());

    let mut curve = LossCurve::new();
    for step in 0..steps {
        let batch = dataset.batch(step, ft.batch_size);
        let logits = model.forward(&batch.inputs, batch.batch_size, batch.seq_len);
        let loss = causal_lm_loss(&logits, &batch.targets);
        curve.push(step, loss.to_scalar());
        let grads = loss.backward();
        client_opt.step(&grads);
        server_opt.step(&grads);
    }
    (curve, model)
}

/// Mean cross-entropy of `model` over `batches` held-out batches
/// (no-grad evaluation on a validation split).
///
/// # Panics
///
/// Panics if `batches` is zero or the dataset cannot supply the batch
/// size.
pub fn evaluate_loss(
    model: &CausalLm,
    dataset: &TokenDataset,
    batch_size: usize,
    batches: usize,
) -> f32 {
    assert!(batches > 0, "need at least one evaluation batch");
    menos_tensor::no_grad(|| {
        let mut total = 0.0f32;
        for b in 0..batches {
            let batch = dataset.batch(b, batch_size);
            let logits = model.forward(&batch.inputs, batch.batch_size, batch.seq_len);
            total += causal_lm_loss(&logits, &batch.targets).to_scalar();
        }
        total / batches as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ClientId;
    use menos_data::{wiki_corpus, Vocab};
    use menos_models::{Arch, ModelConfig};
    use menos_tensor::ParamStore;

    fn setup(arch: Arch) -> (ModelConfig, ParamStore, FineTuneConfig, TokenDataset) {
        let cfg = match arch {
            Arch::Opt => ModelConfig::tiny_opt(33),
            Arch::Llama => ModelConfig::tiny_llama(33),
        };
        let mut rng = seeded_rng(100, "driver-test");
        let ps = menos_models::init_params(&cfg, &mut rng);
        let text = wiki_corpus(5, 4000);
        let vocab = Vocab::from_text(&text);
        assert!(vocab.size() <= 33, "vocab {}", vocab.size());
        let ds = TokenDataset::new(vocab.encode(&text), 16, 5);
        let mut ft = FineTuneConfig::paper(&cfg);
        ft.batch_size = 2;
        ft.seq_len = 16;
        (cfg, ps, ft, ds)
    }

    fn make_pair(
        cfg: &ModelConfig,
        ps: &ParamStore,
        ft: &FineTuneConfig,
        ds: &TokenDataset,
        seed: u64,
    ) -> (SplitClient, ServerSession) {
        let split = SplitSpec::paper();
        let client_model = CausalLm::bind(cfg, &ps.shared_view(false));
        let server_model = CausalLm::bind(cfg, &ps.shared_view(false));
        let client = SplitClient::new(
            ClientId(0),
            client_model,
            split,
            ft.clone(),
            ds.clone(),
            seed,
        );
        let session = ServerSession::new(ClientId(0), server_model, split, ft, seed);
        (client, session)
    }

    #[test]
    fn split_training_reduces_loss() {
        let (cfg, ps, ft, ds) = setup(Arch::Opt);
        let (mut client, mut session) = make_pair(&cfg, &ps, &ft, &ds, 1);
        let curve = run_split_steps(&mut client, &mut session, ForwardMode::Cached, 20);
        assert_eq!(curve.points().len(), 20);
        assert!(
            curve.final_loss().unwrap() < curve.points()[0].1,
            "loss should fall: {:?}",
            curve.points()
        );
    }

    #[test]
    fn split_equals_local_exactly() {
        // The paper: "the fine-tuning results of Menos are identical to
        // single-device fine-tuning, as it only distributes computation
        // while maintaining the same logical flow."
        for arch in [Arch::Opt, Arch::Llama] {
            let (cfg, ps, ft, ds) = setup(arch);
            let (mut client, mut session) = make_pair(&cfg, &ps, &ft, &ds, 7);
            // Local run binds a fresh structure over DEEP-COPIED params
            // so the split run cannot perturb it.
            let local_model = CausalLm::bind(&cfg, &ps.deep_copy(false));
            let local = local_finetune(local_model, SplitSpec::paper(), &ft, &ds, 7, 8);
            let split = run_split_steps(&mut client, &mut session, ForwardMode::Cached, 8);
            for (i, (l, s)) in local.points().iter().zip(split.points()).enumerate() {
                assert!(
                    (l.1 - s.1).abs() < 2e-3,
                    "{arch:?} step {i}: local {:?} vs split {:?}",
                    local.points(),
                    split.points()
                );
            }
        }
    }

    #[test]
    fn reforward_policy_is_numerically_identical() {
        // Menos' no-grad + re-forward path must produce the same losses
        // as the cached path — it trades compute for memory only.
        let (cfg, ps, ft, ds) = setup(Arch::Llama);
        let (mut c1, mut s1) = make_pair(&cfg, &ps, &ft, &ds, 3);
        let cached = run_split_steps(&mut c1, &mut s1, ForwardMode::Cached, 6);

        let ps2 = ps.deep_copy(false);
        let (mut c2, mut s2) = make_pair(&cfg, &ps2, &ft, &ds, 3);
        let nograd = run_split_steps(&mut c2, &mut s2, ForwardMode::NoGradReforward, 6);

        for (a, b) in cached.points().iter().zip(nograd.points()) {
            assert!(
                (a.1 - b.1).abs() < 1e-4,
                "cached {} vs re-forward {}",
                a.1,
                b.1
            );
        }
        assert_eq!(s2.reforward_count(), 6);
        assert_eq!(s1.reforward_count(), 0);
    }

    #[test]
    fn sessions_share_base_but_not_adapters() {
        let (cfg, ps, ft, ds) = setup(Arch::Opt);
        let (_c1, s1) = make_pair(&cfg, &ps, &ft, &ds, 1);
        let (_c2, s2) = make_pair(&cfg, &ps, &ft, &ds, 2);
        // Base weights alias.
        for (a, b) in s1
            .model()
            .base_params()
            .iter()
            .zip(s2.model().base_params())
        {
            assert!(menos_tensor::Tensor::same_storage(a, &b));
        }
        // Adapters are private and distinct.
        assert!(!s1.adapter_params().shares_storage_with(s2.adapter_params()));
        assert!(s1.persistent_bytes() > 0);
    }

    #[test]
    fn nograd_forward_requires_no_graph() {
        let (cfg, ps, ft, ds) = setup(Arch::Opt);
        let (mut client, mut session) = make_pair(&cfg, &ps, &ft, &ds, 1);
        let x_c = client.start_step();
        let x_s = session.forward_nograd(&x_c);
        assert!(!x_s.requires_grad());
        assert!(!session.has_cached_graph());
        let (_, g_c) = client.receive_server_activations(&x_s);
        let g_s = session.backward(&g_c);
        client.receive_server_gradients(&g_s);
        assert_eq!(client.steps_completed(), 1);
    }

    #[test]
    fn release_clears_cached_graph() {
        let (cfg, ps, ft, ds) = setup(Arch::Opt);
        let (mut client, mut session) = make_pair(&cfg, &ps, &ft, &ds, 1);
        let x_c = client.start_step();
        session.forward_cached(&x_c);
        assert!(session.has_cached_graph());
        session.release();
        assert!(!session.has_cached_graph());
    }

    #[test]
    #[should_panic(expected = "backward without a preceding forward")]
    fn backward_requires_forward() {
        let (cfg, ps, ft, ds) = setup(Arch::Opt);
        let (_client, mut session) = make_pair(&cfg, &ps, &ft, &ds, 1);
        session.backward(&menos_tensor::Tensor::zeros([1, 1, 64]));
    }

    #[test]
    fn gradient_accumulation_defers_updates() {
        let (cfg, ps, mut ft, ds) = setup(Arch::Opt);
        ft.grad_accumulation = 3;
        let (mut client, mut session) = make_pair(&cfg, &ps, &ft, &ds, 4);
        let watch = session
            .adapter_params()
            .get("blocks.1.attn.q.lora.b")
            .unwrap()
            .clone();
        let initial = watch.to_vec();

        // Two micro-steps: no optimizer step yet on either side.
        run_split_steps(&mut client, &mut session, ForwardMode::NoGradReforward, 2);
        assert_eq!(watch.to_vec(), initial, "no update before k micro-steps");
        // Third micro-step triggers the accumulated update.
        run_split_steps(&mut client, &mut session, ForwardMode::NoGradReforward, 1);
        assert_ne!(watch.to_vec(), initial, "update after k micro-steps");
    }

    #[test]
    fn gradient_accumulation_still_learns() {
        let (cfg, ps, mut ft, ds) = setup(Arch::Opt);
        ft.grad_accumulation = 2;
        ft.optimizer = menos_adapters::OptimKind::Adam { lr: 2e-3 };
        let (mut client, mut session) = make_pair(&cfg, &ps, &ft, &ds, 4);
        let curve = run_split_steps(&mut client, &mut session, ForwardMode::NoGradReforward, 30);
        let head: f32 = curve.points()[..5].iter().map(|&(_, l)| l).sum::<f32>() / 5.0;
        let tail = curve.tail_mean(5).unwrap();
        assert!(
            tail < head,
            "no learning with accumulation: {head} -> {tail}"
        );
    }
}

#[cfg(test)]
mod eval_tests {
    use super::*;
    use menos_data::{wiki_corpus, Vocab};
    use menos_models::{init_params, CausalLm, ModelConfig};

    #[test]
    fn evaluation_runs_no_grad_and_matches_training_scale() {
        let text = wiki_corpus(3, 6000);
        let vocab = Vocab::from_text(&text);
        let cfg = ModelConfig::tiny_opt(vocab.size());
        let mut rng = seeded_rng(3, "eval");
        let model = CausalLm::bind(&cfg, &init_params(&cfg, &mut rng));
        let ds = TokenDataset::new(vocab.encode(&text), 16, 3);
        let (train, valid) = ds.train_valid_split(0.8, 3);
        let train_loss = evaluate_loss(&model, &train, 2, 3);
        let valid_loss = evaluate_loss(&model, &valid, 2, 3);
        // Untrained model: both near ln(vocab).
        let uniform = (vocab.size() as f32).ln();
        assert!(
            (train_loss - uniform).abs() < 0.6,
            "{train_loss} vs {uniform}"
        );
        assert!(
            (valid_loss - uniform).abs() < 0.6,
            "{valid_loss} vs {uniform}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one evaluation batch")]
    fn evaluation_needs_batches() {
        let text = wiki_corpus(3, 6000);
        let vocab = Vocab::from_text(&text);
        let cfg = ModelConfig::tiny_opt(vocab.size());
        let mut rng = seeded_rng(3, "eval");
        let model = CausalLm::bind(&cfg, &init_params(&cfg, &mut rng));
        let ds = TokenDataset::new(vocab.encode(&text), 16, 3);
        evaluate_loss(&model, &ds, 2, 0);
    }
}

#[cfg(test)]
mod prefix_equivalence_tests {
    use super::*;
    use crate::message::ClientId;
    use menos_adapters::{AdapterKind, OptimKind};
    use menos_data::{wiki_corpus, Vocab};
    use menos_models::{CausalLm, ModelConfig};

    #[test]
    fn prefix_tuning_split_equals_local() {
        // The equivalence claim must hold for every adapter family,
        // not just LoRA.
        let cfg = ModelConfig::tiny_opt(33);
        let mut rng = seeded_rng(400, "prefix-eq");
        let ps = menos_models::init_params(&cfg, &mut rng);
        let text = wiki_corpus(6, 4000);
        let vocab = Vocab::from_text(&text);
        let ds = TokenDataset::new(vocab.encode(&text), 16, 6);
        let ft = FineTuneConfig {
            adapter: AdapterKind::Prefix { len: 4 },
            optimizer: OptimKind::Sgd {
                lr: 0.05,
                momentum: 0.0,
            },
            batch_size: 2,
            seq_len: 16,
            grad_accumulation: 1,
        };
        let split = SplitSpec::paper();

        let local = local_finetune(
            CausalLm::bind(&cfg, &ps.deep_copy(false)),
            split,
            &ft,
            &ds,
            11,
            6,
        );

        let mut client = SplitClient::new(
            ClientId(0),
            CausalLm::bind(&cfg, &ps.shared_view(false)),
            split,
            ft.clone(),
            ds.clone(),
            11,
        );
        let mut session = ServerSession::new(
            ClientId(0),
            CausalLm::bind(&cfg, &ps.shared_view(false)),
            split,
            &ft,
            11,
        );
        let split_curve =
            run_split_steps(&mut client, &mut session, ForwardMode::NoGradReforward, 6);
        for (i, (l, s)) in local.points().iter().zip(split_curve.points()).enumerate() {
            assert!(
                (l.1 - s.1).abs() < 2e-3,
                "prefix step {i}: local {} vs split {}",
                l.1,
                s.1
            );
        }
    }
}

//! # menos-split — the split fine-tuning protocol
//!
//! The paper's four-step protocol (Fig. 1) over real tensors:
//!
//! 1. client input section produces activations `x_c` → server;
//! 2. server body produces `x_s` → client;
//! 3. client output section computes the loss, back-propagates, and
//!    sends `g_c` (gradients at the cut) → server;
//! 4. server back-propagates to `g_s` → client; both sides step their
//!    adapter optimizers.
//!
//! [`SplitClient`] and [`ServerSession`] implement the two parties;
//! [`run_split_steps`] drives them synchronously (every tensor
//! round-trips through the wire codec), and [`local_finetune`] is the
//! non-split baseline. The drivers anchor the reproduction's
//! correctness claims: split ≡ local, and Menos' re-forward path ≡ the
//! cached path (see `driver` tests).
//!
//! # Examples
//!
//! ```
//! use menos_adapters::FineTuneConfig;
//! use menos_data::{wiki_corpus, TokenDataset, Vocab};
//! use menos_models::{init_params, CausalLm, ModelConfig};
//! use menos_split::{run_split_steps, ClientId, ForwardMode, ServerSession, SplitClient, SplitSpec};
//!
//! let cfg = ModelConfig::tiny_opt(33);
//! let mut rng = menos_sim::seeded_rng(0, "doc");
//! let base = init_params(&cfg, &mut rng);
//!
//! let text = wiki_corpus(1, 2000);
//! let vocab = Vocab::from_text(&text);
//! let ds = TokenDataset::new(vocab.encode(&text), 16, 1);
//! let mut ft = FineTuneConfig::paper(&cfg);
//! ft.batch_size = 2;
//! ft.seq_len = 16;
//!
//! let split = SplitSpec::paper();
//! let mut client = SplitClient::new(
//!     ClientId(0), CausalLm::bind(&cfg, &base.shared_view(false)),
//!     split, ft.clone(), ds, 0,
//! );
//! let mut session = ServerSession::new(
//!     ClientId(0), CausalLm::bind(&cfg, &base.shared_view(false)),
//!     split, &ft, 0,
//! );
//! let curve = run_split_steps(&mut client, &mut session, ForwardMode::NoGradReforward, 3);
//! assert_eq!(curve.points().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod client;
mod codec;
mod driver;
mod event_loop;
mod fault;
mod message;
mod protocol;
mod retry;
mod server;
mod spec;
mod tcp;

pub use chaos::{ChaosConn, ChaosListener, ChaosOptions, Fault};
pub use client::SplitClient;
pub use codec::{
    client_message_parts, decode_client_message, decode_client_message_parts,
    decode_server_message, decode_server_message_parts, encode_client_message,
    encode_server_message, server_message_parts, MessageKind,
};
pub use driver::{
    evaluate_loss, local_finetune, local_finetune_returning_model, run_split_steps, ForwardMode,
};
pub use event_loop::{
    event_channel_listener, event_sim_listener, BatchHandler, ChannelDialer, EventConn,
    EventListener, EventLoopOptions, EventLoopStats, IdleBackoff, QueueListener, ServerEventLoop,
    SimDialer, SnapshotPolicy,
};
pub use fault::FaultTransport;
pub use message::{
    activation_wire_bytes, activation_wire_bytes_with, ClientId, ClientMessage, EvictionCode,
    ServerMessage,
};
pub use protocol::{
    channel_pair, dispatch_session, drive_client, serve_loop, sim_pair, ChannelTransport,
    MessageHandler, ProtocolError, SessionHandler, SimTransport, Transport, WireMessage,
};
pub use retry::{drive_client_resumable, drive_client_routed, RetryPolicy, MIN_BUSY_DELAY};
pub use server::ServerSession;
pub use spec::SplitSpec;
pub use tcp::{
    run_tcp_client, run_tcp_client_fleet, run_tcp_client_resumable, TcpEventConn, TcpEventListener,
    TcpEventServer, TcpOptions, TcpSplitServer, TcpTransport,
};

//! Property tests for the unified message codec: every arbitrary
//! message round-trips bit-exactly, and decoding rejects truncation at
//! *every* prefix length — no partial frame is ever accepted.

use bytes::Bytes;
use proptest::prelude::*;

use menos_adapters::{AdapterKind, FineTuneConfig, OptimKind};
use menos_models::{AdapterTarget, LoraSpec};
use menos_net::DEFAULT_MAX_FRAME;
use menos_split::{
    decode_client_message, decode_server_message, encode_client_message, encode_server_message,
    ClientId, ClientMessage, EvictionCode, ServerMessage, SplitSpec,
};

fn arb_target() -> BoxedStrategy<AdapterTarget> {
    prop_oneof![
        Just(AdapterTarget::Q),
        Just(AdapterTarget::K),
        Just(AdapterTarget::V),
        Just(AdapterTarget::O),
        Just(AdapterTarget::MlpUp),
        Just(AdapterTarget::MlpDown),
    ]
    .boxed()
}

fn arb_adapter() -> BoxedStrategy<AdapterKind> {
    // Finite float ranges keep `PartialEq` round-trip assertions sound
    // (NaN never compares equal to itself).
    let lora = (
        1usize..64,
        0.25f32..128.0,
        1usize..8,
        prop::collection::vec(arb_target(), 0..6),
    )
        .prop_map(
            |(rank, alpha, targets_per_block, targets)| AdapterKind::Lora {
                spec: LoraSpec {
                    rank,
                    alpha,
                    targets_per_block,
                },
                targets,
            },
        );
    let prefix = (1usize..64).prop_map(|len| AdapterKind::Prefix { len });
    prop_oneof![lora.boxed(), prefix.boxed()].boxed()
}

fn arb_optimizer() -> BoxedStrategy<OptimKind> {
    prop_oneof![
        (1e-6f32..1.0).prop_map(|lr| OptimKind::Adam { lr }).boxed(),
        (1e-6f32..1.0, 0.0f32..0.999)
            .prop_map(|(lr, momentum)| OptimKind::Sgd { lr, momentum })
            .boxed(),
    ]
    .boxed()
}

fn arb_ft() -> BoxedStrategy<FineTuneConfig> {
    (
        arb_adapter(),
        arb_optimizer(),
        1usize..64,
        1usize..512,
        1usize..16,
    )
        .prop_map(
            |(adapter, optimizer, batch_size, seq_len, grad_accumulation)| FineTuneConfig {
                adapter,
                optimizer,
                batch_size,
                seq_len,
                grad_accumulation,
            },
        )
        .boxed()
}

fn arb_payload() -> BoxedStrategy<Bytes> {
    // The codec treats tensor payloads as opaque bytes, so arbitrary
    // byte strings cover the framing exhaustively.
    prop::collection::vec(0u8..=255, 0..256)
        .prop_map(Bytes::from)
        .boxed()
}

fn arb_client_message() -> BoxedStrategy<ClientMessage> {
    let id = || (0u64..u64::MAX).prop_map(ClientId);
    prop_oneof![
        (id(), arb_ft(), 1usize..12, 1u64..u64::MAX, 0u64..16)
            .prop_map(
                |(client, ft, layers, epoch, codecs)| ClientMessage::Connect {
                    client,
                    ft,
                    split: SplitSpec::new(layers),
                    epoch,
                    codecs,
                }
            )
            .boxed(),
        (id(), arb_payload())
            .prop_map(|(client, frame)| ClientMessage::Activations { client, frame })
            .boxed(),
        (id(), arb_payload())
            .prop_map(|(client, frame)| ClientMessage::Gradients { client, frame })
            .boxed(),
        (id(), 0u64..u64::MAX, 0u64..u64::MAX)
            .prop_map(|(client, epoch, last_step)| ClientMessage::Resume {
                client,
                epoch,
                last_step,
            })
            .boxed(),
        id().prop_map(|client| ClientMessage::Disconnect { client })
            .boxed(),
    ]
    .boxed()
}

fn arb_eviction_code() -> BoxedStrategy<EvictionCode> {
    prop_oneof![
        Just(EvictionCode::Timeout),
        Just(EvictionCode::IdleExpired),
        Just(EvictionCode::Shutdown),
    ]
    .boxed()
}

fn arb_codec() -> BoxedStrategy<menos_net::Codec> {
    prop_oneof![
        Just(menos_net::Codec::F32Raw),
        Just(menos_net::Codec::F16),
        Just(menos_net::Codec::BF16),
        Just(menos_net::Codec::TopK8),
    ]
    .boxed()
}

fn arb_server_message() -> BoxedStrategy<ServerMessage> {
    let id = || (0u64..u64::MAX).prop_map(ClientId);
    prop_oneof![
        (id(), arb_codec())
            .prop_map(|(client, codec)| ServerMessage::Ready { client, codec })
            .boxed(),
        (id(), arb_payload())
            .prop_map(|(client, frame)| ServerMessage::ServerActivations { client, frame })
            .boxed(),
        (id(), arb_payload())
            .prop_map(|(client, frame)| ServerMessage::ServerGradients { client, frame })
            .boxed(),
        (id(), 0u64..u64::MAX, 0u64..u64::MAX, arb_payload())
            .prop_map(
                |(client, epoch, server_step, replay)| ServerMessage::Resumed {
                    client,
                    epoch,
                    server_step,
                    replay,
                }
            )
            .boxed(),
        (id(), arb_eviction_code())
            .prop_map(|(client, code)| ServerMessage::Evicted { client, code })
            .boxed(),
    ]
    .boxed()
}

proptest! {
    #[test]
    fn client_messages_round_trip(msg in arb_client_message()) {
        let bytes = encode_client_message(&msg);
        let back = decode_client_message(&bytes, DEFAULT_MAX_FRAME)
            .expect("well-formed frame must decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn server_messages_round_trip(msg in arb_server_message()) {
        let bytes = encode_server_message(&msg);
        let back = decode_server_message(&bytes, DEFAULT_MAX_FRAME)
            .expect("well-formed frame must decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn client_decode_rejects_every_truncation(msg in arb_client_message()) {
        let bytes = encode_client_message(&msg);
        for keep in 0..bytes.len() {
            let prefix = bytes.slice(..keep);
            prop_assert!(
                decode_client_message(&prefix, DEFAULT_MAX_FRAME).is_err(),
                "prefix of {keep}/{} bytes must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn server_decode_rejects_every_truncation(msg in arb_server_message()) {
        let bytes = encode_server_message(&msg);
        for keep in 0..bytes.len() {
            let prefix = bytes.slice(..keep);
            prop_assert!(
                decode_server_message(&prefix, DEFAULT_MAX_FRAME).is_err(),
                "prefix of {keep}/{} bytes must not decode",
                bytes.len()
            );
        }
    }
}

//! Nonblocking frame I/O: incremental reassembly of protocol frames
//! from arbitrarily fragmented byte chunks, and a partial-write queue
//! for the mirror direction.
//!
//! The blocking path ([`crate::read_frame_bytes`]) owns a socket and
//! parks the thread until a whole frame arrives — one thread per
//! client. An event-driven server instead reads *whatever bytes are
//! available right now* from many nonblocking sockets on one thread,
//! so frames arrive in fragments: half a header now, the rest plus two
//! complete frames later. [`FrameAccumulator`] turns that fragment
//! stream back into the exact frames the blocking reader would have
//! produced, enforcing the same safety property: the 18-byte header is
//! validated (magic, version, declared length vs the cap) **before**
//! any payload buffer is reserved, and validation happens *as the
//! header bytes trickle in* — a hostile magic byte is rejected on byte
//! one, a hostile length on byte eighteen, never after a payload
//! allocation.
//!
//! [`WriteQueue`] is the outbound mirror: frames are queued whole, and
//! `write_to` pushes as many bytes as the peer will take, remembering
//! the offset mid-frame when the socket signals `WouldBlock`.

use std::collections::VecDeque;
use std::io;

use bytes::Bytes;

use menos_tensor::pool;

use crate::wire::{WireError, FRAME_HEADER_BYTES, FRAME_MAGIC, WIRE_VERSION};

const HEADER: usize = FRAME_HEADER_BYTES as usize;

/// Incremental protocol-frame reassembler for nonblocking reads.
///
/// Feed it byte chunks in arrival order via [`FrameAccumulator::push`];
/// it yields every frame completed by that chunk. The bytes of each
/// yielded frame are identical to what [`crate::read_frame_bytes`]
/// would return from the same stream.
///
/// # Examples
///
/// ```
/// use menos_net::{encode_frame, FrameAccumulator, DEFAULT_MAX_FRAME};
///
/// let frame = encode_frame(1, 7, b"payload");
/// let mut acc = FrameAccumulator::new(DEFAULT_MAX_FRAME);
/// // Dribble the frame in one byte at a time.
/// let mut got = Vec::new();
/// for &b in frame.iter() {
///     got.extend(acc.push(&[b]).unwrap());
/// }
/// assert_eq!(got, vec![frame]);
/// ```
#[derive(Debug)]
pub struct FrameAccumulator {
    max_frame: usize,
    /// Upper bound on bytes this accumulator will ever stage for one
    /// in-progress frame (header + payload). Defaults to `max_frame`.
    staged_cap: usize,
    /// Bytes of the in-progress frame (header prefix + payload prefix).
    buf: Vec<u8>,
    /// Total size of the in-progress frame once the header is parsed
    /// (`None` while still inside the header).
    need: Option<usize>,
    /// How many header bytes have already passed validation.
    checked: usize,
    /// Size of the last completed frame — the staging-buffer capacity
    /// hint for the next one, so steady-state same-size frames reuse a
    /// pooled allocation instead of growing a fresh `Vec` each time.
    hint: usize,
}

impl FrameAccumulator {
    /// Creates an accumulator that rejects frames whose declared
    /// payload exceeds `max_frame` bytes.
    pub fn new(max_frame: usize) -> FrameAccumulator {
        FrameAccumulator {
            max_frame,
            staged_cap: HEADER + max_frame,
            buf: Vec::new(),
            need: None,
            checked: 0,
            hint: HEADER,
        }
    }

    /// Caps the reassembly buffer at `staged_cap` bytes (header +
    /// payload), independently of the protocol-level frame cap.
    ///
    /// `max_frame` is a protocol constant ("no peer may *declare* more
    /// than this"); the staged cap is a deployment memory knob ("this
    /// server will not *hold* more than this per session while a frame
    /// trickles in"). A slow-drip client parks its partial frame in
    /// this buffer for as long as it stays connected, so an event
    /// server with many sessions sizes the cap to its largest
    /// legitimate frame, not to the defensive protocol maximum. A
    /// header declaring more than the cap is rejected with
    /// [`WireError::StagedOverflow`] before any payload capacity is
    /// reserved.
    pub fn with_staged_cap(mut self, staged_cap: usize) -> FrameAccumulator {
        self.staged_cap = staged_cap;
        self
    }

    /// Number of buffered bytes belonging to a not-yet-complete frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// True when no partial frame is buffered (a clean frame boundary —
    /// safe to close the connection without losing data).
    pub fn is_clean(&self) -> bool {
        self.buf.is_empty()
    }

    /// Validates the header bytes received so far. Called after every
    /// header byte lands, so a bad magic or version is rejected at the
    /// earliest byte that proves it, and the declared length is checked
    /// against the cap before any payload capacity is reserved.
    fn check_header(&mut self) -> Result<(), WireError> {
        let magic = FRAME_MAGIC.to_le_bytes();
        while self.checked < self.buf.len().min(HEADER) {
            let i = self.checked;
            let b = self.buf[i];
            match i {
                0..=3 if b != magic[i] => {
                    let mut got = [0u8; 4];
                    got[..=i].copy_from_slice(&self.buf[..=i]);
                    return Err(WireError::BadMagic(u32::from_le_bytes(got)));
                }
                4 if b != WIRE_VERSION => {
                    return Err(WireError::BadVersion(b));
                }
                _ => {}
            }
            self.checked += 1;
        }
        if self.need.is_none() && self.buf.len() >= HEADER {
            let len = u32::from_le_bytes(self.buf[14..18].try_into().expect("4 bytes")) as usize;
            if len > self.max_frame {
                return Err(WireError::TooLarge {
                    declared: len as u64,
                    max: self.max_frame as u64,
                });
            }
            if HEADER + len > self.staged_cap {
                return Err(WireError::StagedOverflow {
                    needed: (HEADER + len) as u64,
                    cap: self.staged_cap as u64,
                });
            }
            // Only now — with the declared length validated — is the
            // payload buffer reserved.
            self.need = Some(HEADER + len);
            self.buf.reserve_exact(HEADER + len - self.buf.len());
        }
        Ok(())
    }

    /// Appends a chunk of received bytes, returning every frame the
    /// chunk completes (possibly none, possibly several).
    ///
    /// # Errors
    ///
    /// Returns the same [`WireError`]s as the blocking reader: bad
    /// magic, unsupported version, or an oversize length declaration.
    /// After an error the connection should be dropped; the
    /// accumulator's further behaviour is unspecified.
    pub fn push(&mut self, mut chunk: &[u8]) -> Result<Vec<Bytes>, WireError> {
        let mut out = Vec::new();
        while !chunk.is_empty() {
            if self.buf.capacity() == 0 {
                // Starting a new frame: stage into a pooled buffer
                // sized by the previous frame (steady-state traffic
                // repeats the same tensor shapes). The staged cap
                // still bounds what this accumulator may hold.
                crate::wire::register_recycler();
                let staged = pool::take_bytes(self.hint);
                if staged.capacity() <= self.staged_cap {
                    self.buf = staged;
                }
            }
            let want = match self.need {
                Some(n) => n,
                None => HEADER,
            };
            let take = (want - self.buf.len()).min(chunk.len());
            self.buf.extend_from_slice(&chunk[..take]);
            chunk = &chunk[take..];
            if self.need.is_none() {
                self.check_header()?;
            }
            if let Some(n) = self.need {
                if self.buf.len() == n {
                    // Completed frames move into `Bytes` without a
                    // copy; when the last view drops, the allocation
                    // recycles into the pool for the next frame.
                    out.push(Bytes::from(std::mem::take(&mut self.buf)));
                    self.need = None;
                    self.checked = 0;
                    self.hint = n.min(self.staged_cap);
                }
            }
        }
        Ok(out)
    }
}

/// Outbound frame queue with partial-write support and vectored
/// writes.
///
/// Frames are enqueued as one or more byte segments in send order —
/// whole via [`WriteQueue::push`], or as `[header, body]` reference
/// pairs via [`WriteQueue::push_frame`] (no contiguous copy is built).
/// [`WriteQueue::write_to`] gathers the front segments into a single
/// `write_vectored` call and pushes bytes until the queue drains or
/// the writer signals `WouldBlock`, remembering the mid-segment offset
/// so the next call resumes exactly where the socket stopped — even
/// mid-header.
#[derive(Debug, Default)]
pub struct WriteQueue {
    queue: VecDeque<Bytes>,
    /// Bytes of the front segment already accepted by the writer.
    offset: usize,
}

/// Max segments gathered into one vectored write (two per frame, so
/// this batches several small frames per syscall).
const WRITE_BATCH_SEGMENTS: usize = 16;

impl WriteQueue {
    /// Creates an empty queue.
    pub fn new() -> WriteQueue {
        WriteQueue::default()
    }

    /// Enqueues an encoded frame for transmission.
    pub fn push(&mut self, frame: Bytes) {
        self.queue.push_back(frame);
    }

    /// Enqueues a frame given as separate header and body buffers.
    /// Both are shared by reference; the body of a tensor reply is
    /// typically the encoder's buffer, refcounted rather than copied.
    pub fn push_frame(&mut self, header: Bytes, body: Bytes) {
        self.queue.push_back(header);
        if !body.is_empty() {
            self.queue.push_back(body);
        }
    }

    /// True when every queued byte has been written.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Bytes still waiting to be written (including the unwritten tail
    /// of a partially sent segment).
    pub fn queued_bytes(&self) -> usize {
        self.queue.iter().map(Bytes::len).sum::<usize>() - self.offset
    }

    /// Pops fully-written (or empty) front segments.
    fn pop_done(&mut self) {
        while let Some(front) = self.queue.front() {
            if self.offset < front.len() {
                break;
            }
            self.offset = 0;
            self.queue.pop_front();
        }
    }

    /// Writes as much queued data as the writer accepts, gathering the
    /// front segments into vectored writes. Returns `Ok(true)` when
    /// the queue drained, `Ok(false)` when the writer signalled
    /// `WouldBlock` mid-stream (call again on the next writability
    /// event).
    ///
    /// # Errors
    ///
    /// Propagates writer errors other than `WouldBlock`/`Interrupted`;
    /// a writer that accepts zero bytes yields `WriteZero`.
    pub fn write_to(&mut self, w: &mut impl io::Write) -> io::Result<bool> {
        self.pop_done();
        while !self.queue.is_empty() {
            let mut slices: Vec<io::IoSlice<'_>> = Vec::with_capacity(WRITE_BATCH_SEGMENTS);
            for (i, seg) in self.queue.iter().take(WRITE_BATCH_SEGMENTS).enumerate() {
                let off = if i == 0 { self.offset } else { 0 };
                slices.push(io::IoSlice::new(&seg[off..]));
            }
            match w.write_vectored(&slices) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer accepted zero bytes",
                    ))
                }
                Ok(mut n) => {
                    // Advance across however many segments `n` covers.
                    while n > 0 {
                        let rem =
                            self.queue.front().expect("bytes imply a segment").len() - self.offset;
                        if n >= rem {
                            n -= rem;
                            self.offset = 0;
                            self.queue.pop_front();
                        } else {
                            self.offset += n;
                            n = 0;
                        }
                    }
                    self.pop_done();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_frame, encode_frame_header, read_frame_bytes, DEFAULT_MAX_FRAME};

    fn frames() -> Vec<Bytes> {
        vec![
            encode_frame(1, 3, b"alpha"),
            encode_frame(2, 3, &vec![0xAB; 300]),
            encode_frame(4, 3, b""),
        ]
    }

    /// Satellite requirement: dribbling a frame stream one byte at a
    /// time reassembles exactly the frames a blocking reader sees.
    #[test]
    fn one_byte_dribble_matches_blocking_reads() {
        let frames = frames();
        let stream: Vec<u8> = frames.iter().flat_map(|f| f.to_vec()).collect();

        let mut acc = FrameAccumulator::new(DEFAULT_MAX_FRAME);
        let mut got = Vec::new();
        for &b in &stream {
            got.extend(acc.push(&[b]).expect("valid stream"));
        }
        assert!(acc.is_clean());

        let mut reader = std::io::Cursor::new(stream);
        let blocking: Vec<Bytes> = (0..frames.len())
            .map(|_| read_frame_bytes(&mut reader, DEFAULT_MAX_FRAME).expect("blocking read"))
            .collect();
        assert_eq!(got, blocking);
        assert_eq!(got, frames);
    }

    #[test]
    fn bulk_push_yields_multiple_frames_and_keeps_partials() {
        let frames = frames();
        let stream: Vec<u8> = frames.iter().flat_map(|f| f.to_vec()).collect();
        let mut acc = FrameAccumulator::new(DEFAULT_MAX_FRAME);
        // Everything except the final byte: first two frames complete,
        // third stays pending.
        let most = acc.push(&stream[..stream.len() - 1]).unwrap();
        assert_eq!(most, frames[..2]);
        assert!(!acc.is_clean());
        assert_eq!(acc.pending_bytes(), frames[2].len() - 1);
        let last = acc.push(&stream[stream.len() - 1..]).unwrap();
        assert_eq!(last, frames[2..]);
        assert!(acc.is_clean());
    }

    #[test]
    fn random_fragmentation_matches_whole_frames() {
        let frames = frames();
        let stream: Vec<u8> = frames.iter().flat_map(|f| f.to_vec()).collect();
        // Deterministic "random" chunk sizes cycling through awkward
        // boundaries (mid-magic, mid-length, mid-payload).
        for chunk_sizes in [&[1usize, 2, 3, 5, 7][..], &[17, 19][..], &[4, 14, 1][..]] {
            let mut acc = FrameAccumulator::new(DEFAULT_MAX_FRAME);
            let mut got = Vec::new();
            let mut pos = 0;
            let mut i = 0;
            while pos < stream.len() {
                let n = chunk_sizes[i % chunk_sizes.len()].min(stream.len() - pos);
                got.extend(acc.push(&stream[pos..pos + n]).unwrap());
                pos += n;
                i += 1;
            }
            assert_eq!(got, frames, "chunks {chunk_sizes:?}");
        }
    }

    #[test]
    fn hostile_magic_rejected_on_first_bad_byte() {
        let mut acc = FrameAccumulator::new(DEFAULT_MAX_FRAME);
        let err = acc.push(b"X").unwrap_err();
        assert!(matches!(err, WireError::BadMagic(_)), "{err}");
    }

    #[test]
    fn hostile_version_rejected_at_byte_five() {
        let mut acc = FrameAccumulator::new(DEFAULT_MAX_FRAME);
        let good = encode_frame(1, 0, b"x");
        assert!(acc.push(&good[..4]).unwrap().is_empty());
        let err = acc.push(&[9]).unwrap_err();
        assert!(matches!(err, WireError::BadVersion(9)), "{err}");
    }

    #[test]
    fn hostile_length_rejected_before_payload_reservation() {
        let mut acc = FrameAccumulator::new(1 << 20);
        let header = encode_frame_header(2, 0, u32::MAX);
        let err = acc.push(&header).unwrap_err();
        assert!(matches!(err, WireError::TooLarge { .. }), "{err}");
        // No payload-sized buffer was ever reserved.
        assert!(acc.buf.capacity() < 4096, "capacity {}", acc.buf.capacity());
    }

    /// Satellite requirement: N sessions drip-feeding partial frames
    /// cannot grow server memory past `N * staged_cap` — a header
    /// declaring more than the cap is rejected before any payload
    /// capacity is reserved, and an accepted frame's buffer never
    /// exceeds the cap.
    #[test]
    fn slow_drip_sessions_stay_under_the_staged_cap() {
        const SESSIONS: usize = 64;
        const STAGED_CAP: usize = 4 << 10;
        let header = HEADER;

        // Hostile case: each session declares a 1 MiB payload (legal
        // under max_frame) and then stalls. The declaration itself must
        // be rejected at header completion.
        let mut hostile: Vec<FrameAccumulator> = (0..SESSIONS)
            .map(|_| FrameAccumulator::new(DEFAULT_MAX_FRAME).with_staged_cap(STAGED_CAP))
            .collect();
        let big = encode_frame_header(2, 0, 1 << 20);
        for acc in &mut hostile {
            // Drip the header one byte at a time; the overflow fires on
            // the final header byte, before any payload reservation.
            for &b in &big[..header - 1] {
                assert!(acc.push(&[b]).unwrap().is_empty());
            }
            let err = acc.push(&big[header - 1..header]).unwrap_err();
            assert!(matches!(err, WireError::StagedOverflow { .. }), "{err}");
        }
        let total: usize = hostile.iter().map(|a| a.buf.capacity()).sum();
        assert!(
            total <= SESSIONS * STAGED_CAP,
            "hostile sessions hold {total} bytes"
        );

        // Legitimate case: frames under the cap still reassemble from a
        // drip, and the buffer never exceeds the cap.
        let mut acc = FrameAccumulator::new(DEFAULT_MAX_FRAME).with_staged_cap(STAGED_CAP);
        let frame = encode_frame(2, 9, &vec![0x5A; STAGED_CAP / 2]);
        let mut got = Vec::new();
        for chunk in frame.chunks(7) {
            got.extend(acc.push(chunk).unwrap());
            assert!(acc.buf.capacity() <= STAGED_CAP, "{}", acc.buf.capacity());
        }
        assert_eq!(got, vec![frame]);
    }

    /// A writer that accepts at most `cap` bytes per call and signals
    /// `WouldBlock` on every other call — the worst-case nonblocking
    /// socket.
    struct Throttled {
        sink: Vec<u8>,
        cap: usize,
        starve: bool,
    }

    impl io::Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.starve = !self.starve;
            if self.starve {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "try later"));
            }
            let n = buf.len().min(self.cap);
            self.sink.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Satellite requirement: writes split mid-header (1 byte at a
    /// time, interleaved with WouldBlock) still deliver a byte stream
    /// that blocking reads decode to the original frames.
    #[test]
    fn partial_writes_split_mid_header_still_decode() {
        let frames = frames();
        let mut q = WriteQueue::new();
        for f in &frames {
            q.push(f.clone());
        }
        let total: usize = frames.iter().map(|f| f.len()).sum();
        assert_eq!(q.queued_bytes(), total);

        let mut w = Throttled {
            sink: Vec::new(),
            cap: 1,
            starve: false,
        };
        let mut rounds = 0;
        while !q.write_to(&mut w).unwrap() {
            rounds += 1;
            assert!(rounds < 10 * total, "no progress");
        }
        assert!(q.is_empty());
        assert_eq!(q.queued_bytes(), 0);

        let mut reader = std::io::Cursor::new(w.sink);
        for f in &frames {
            let got = read_frame_bytes(&mut reader, DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(&got, f);
        }
    }

    /// Frames queued as `[header, body]` segment pairs must produce a
    /// byte stream identical to queuing the contiguous encoding —
    /// including under 1-byte throttled vectored writes.
    #[test]
    fn segmented_frames_match_contiguous_encoding() {
        use crate::wire::{encode_frame_header, encode_tensor};
        let body = encode_tensor(&menos_tensor::Tensor::from_vec(
            (0..64).map(|i| i as f32 * 0.5).collect(),
            [8, 8],
        ));
        let contiguous = encode_frame(2, 11, &body);
        let header = encode_frame_header(2, 11, body.len() as u32);

        let mut q = WriteQueue::new();
        q.push_frame(header.clone(), body.clone());
        q.push_frame(encode_frame_header(4, 11, 0), Bytes::new());
        assert_eq!(q.queued_bytes(), contiguous.len() + HEADER);
        let mut sink = Vec::new();
        assert!(q.write_to(&mut sink).unwrap());
        assert_eq!(&sink[..contiguous.len()], &contiguous[..]);

        // Same stream under the worst-case writer.
        let mut q = WriteQueue::new();
        q.push_frame(header, body);
        let mut w = Throttled {
            sink: Vec::new(),
            cap: 1,
            starve: false,
        };
        while !q.write_to(&mut w).unwrap() {}
        assert_eq!(w.sink, contiguous.to_vec());
    }

    #[test]
    fn write_zero_surfaces_as_error() {
        struct Dead;
        impl io::Write for Dead {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut q = WriteQueue::new();
        q.push(encode_frame(1, 0, b"x"));
        let err = q.write_to(&mut Dead).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }
}

//! Negotiated tensor-body compression (protocol v1.2).
//!
//! The raw tensor body (`"MNS1"`, [`crate::encode_tensor`]) stays
//! byte-for-byte what v1.0/v1.1 peers produce; compressed bodies use a
//! distinct magic (`"MNC1"`) plus a codec tag byte, so an un-upgraded
//! peer that is handed one rejects it as a typed [`WireError::BadMagic`]
//! instead of misreading it. Which codec a session may use is
//! negotiated at `Connect` time via feature-flag bits (see
//! `PROTOCOL.md` §7) and enforced on decode: a compressed body whose
//! tag was not negotiated is `Malformed`, never silently accepted.
//!
//! Three compressed schemes exist beyond the raw baseline:
//!
//! * [`Codec::F16`] / [`Codec::BF16`] — 2-byte scalar quantization of
//!   the body only. Master weights, optimizer moments, and every other
//!   piece of training state stay f32 on both ends.
//! * [`Codec::TopK8`] — top-⌈n/8⌉ magnitude sparsification with
//!   error-feedback residual accumulators held in [`TensorCodec`]:
//!   what a step fails to send is added into the next step's tensor
//!   before selection, in the spirit of DisTrO-style distributed
//!   training compressors. The residuals are session state and must
//!   ride server snapshots — see `DESIGN.md` §4.12.

use std::collections::BTreeMap;

use bytes::{Buf, Bytes};

use menos_tensor::{lowp, pool, Tensor};

use crate::wire::{
    decode_tensor, encode_tensor, register_recycler, wire_size, WireError, COMPRESSED_MAGIC, MAGIC,
    MAX_ELEMS,
};

/// Top-k density: `TopK8` sends the `⌈n / 8⌉` largest-magnitude
/// entries of each tensor.
const TOPK_DIVISOR: usize = 8;

/// Role tag for activation-direction tensors fed to
/// [`TensorCodec::encode`]; keeps the activation and gradient
/// error-feedback residuals separate.
pub const ROLE_ACTIVATIONS: u8 = 0;

/// Role tag for gradient-direction tensors fed to
/// [`TensorCodec::encode`].
pub const ROLE_GRADIENTS: u8 = 1;

/// A tensor-body compression scheme (protocol v1.2, `PROTOCOL.md` §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Codec {
    /// Raw little-endian f32 — the bit-identical v1.0/v1.1 baseline.
    F32Raw = 0,
    /// IEEE-754 binary16 quantization (2 bytes/element, lossy).
    F16 = 1,
    /// bfloat16 quantization (2 bytes/element, lossy).
    BF16 = 2,
    /// Top-⌈n/8⌉ magnitude sparsification with error feedback (lossy).
    TopK8 = 3,
}

impl Codec {
    /// Every codec this build speaks, in ascending tag order.
    pub const ALL: [Codec; 4] = [Codec::F32Raw, Codec::F16, Codec::BF16, Codec::TopK8];

    /// The wire tag byte for this codec.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Parses a wire tag byte.
    pub fn from_tag(tag: u8) -> Option<Codec> {
        Codec::ALL.into_iter().find(|c| c.tag() == tag)
    }

    /// Canonical lowercase name (what `--codec` accepts).
    pub fn name(self) -> &'static str {
        match self {
            Codec::F32Raw => "f32-raw",
            Codec::F16 => "f16",
            Codec::BF16 => "bf16",
            Codec::TopK8 => "topk8",
        }
    }

    /// Parses a [`Codec::name`] string (`"raw"` is accepted as an
    /// alias for `"f32-raw"`).
    pub fn parse(s: &str) -> Option<Codec> {
        match s {
            "raw" => Some(Codec::F32Raw),
            _ => Codec::ALL.into_iter().find(|c| c.name() == s),
        }
    }

    /// The Connect feature-flag bit advertising this codec.
    pub fn flag(self) -> u64 {
        1u64 << self.tag()
    }

    /// Whether decoding inverts encoding exactly for every tensor.
    pub fn is_lossless(self) -> bool {
        matches!(self, Codec::F32Raw)
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Bitmask advertising every codec this build supports.
pub fn supported_codec_mask() -> u64 {
    Codec::ALL.iter().map(|c| c.flag()).fold(0, |a, b| a | b)
}

/// Server-side codec selection: the highest-tag compressed codec both
/// masks contain, or [`Codec::F32Raw`] when the intersection holds no
/// compressed codec (including when either peer advertised nothing —
/// the v1.1 fallback rule). Unknown flag bits are reserved and
/// ignored.
pub fn negotiate(advertised: u64, supported: u64) -> Codec {
    let both = advertised & supported;
    Codec::ALL
        .into_iter()
        .rev()
        .find(|c| *c != Codec::F32Raw && both & c.flag() != 0)
        .unwrap_or(Codec::F32Raw)
}

/// The exact number of body bytes the given codec produces for a
/// tensor of the given shape — the codec-aware companion of
/// [`wire_size`], used by the analytic engine to charge links with
/// post-compression byte counts.
pub fn wire_size_with(codec: Codec, dims: &[usize]) -> u64 {
    let elems: usize = dims.iter().product();
    let head = 9 + 8 * dims.len() as u64;
    match codec {
        Codec::F32Raw => wire_size(dims),
        Codec::F16 | Codec::BF16 => head + 2 * elems as u64,
        Codec::TopK8 => head + 8 + 8 * elems.div_ceil(TOPK_DIVISOR) as u64,
    }
}

/// Decodes a tensor body of either layout, reporting which codec
/// produced it.
///
/// # Errors
///
/// Returns [`WireError`] on truncation, unknown magic or codec tag,
/// implausible shapes, or a non-canonical top-k index set.
pub fn decode_tensor_any(bytes: &Bytes) -> Result<(Tensor, Codec), WireError> {
    if bytes.len() < 4 {
        return Err(WireError::Truncated);
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    match magic {
        MAGIC => decode_tensor(bytes).map(|t| (t, Codec::F32Raw)),
        COMPRESSED_MAGIC => decode_compressed(bytes),
        other => Err(WireError::BadMagic(other)),
    }
}

/// Reads and validates the `rank, dims…` prefix shared by every
/// compressed body, returning the dims and element count.
fn decode_dims(buf: &mut Bytes) -> Result<(Vec<usize>, usize), WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let rank = buf.get_u32_le() as usize;
    if buf.remaining() < 8 * rank {
        return Err(WireError::Truncated);
    }
    let mut dims = Vec::with_capacity(rank);
    let mut elems: u64 = 1;
    for _ in 0..rank {
        let d = buf.get_u64_le();
        elems = elems.saturating_mul(d.max(1));
        if elems > MAX_ELEMS {
            return Err(WireError::Oversized(elems));
        }
        dims.push(d as usize);
    }
    let n: usize = dims.iter().product();
    Ok((dims, n))
}

fn decode_compressed(bytes: &Bytes) -> Result<(Tensor, Codec), WireError> {
    let mut buf = bytes.clone();
    if buf.remaining() < 5 {
        return Err(WireError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != COMPRESSED_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let tag = buf.get_u8();
    let codec = match Codec::from_tag(tag) {
        // Raw bodies use the "MNS1" layout; a raw tag inside the
        // compressed layout is non-canonical and rejected.
        None | Some(Codec::F32Raw) => {
            return Err(WireError::Malformed(format!("unknown codec tag {tag}")))
        }
        Some(c) => c,
    };
    let (dims, n) = decode_dims(&mut buf)?;
    match codec {
        Codec::F16 | Codec::BF16 => {
            if buf.remaining() < 2 * n {
                return Err(WireError::Truncated);
            }
            if buf.remaining() > 2 * n {
                return Err(WireError::Malformed(format!(
                    "{} trailing bytes after quantized payload",
                    buf.remaining() - 2 * n
                )));
            }
            let mut data = pool::take_f32(n);
            if codec == Codec::F16 {
                lowp::decode_f16_le(&buf[..2 * n], &mut data);
            } else {
                lowp::decode_bf16_le(&buf[..2 * n], &mut data);
            }
            pool::count_copied(2 * n);
            Ok((Tensor::from_vec(data, dims), codec))
        }
        Codec::TopK8 => {
            if buf.remaining() < 8 {
                return Err(WireError::Truncated);
            }
            let k = buf.get_u64_le();
            if k > n as u64 {
                return Err(WireError::Malformed(format!(
                    "top-k count {k} exceeds element count {n}"
                )));
            }
            let k = k as usize;
            if buf.remaining() < 8 * k {
                return Err(WireError::Truncated);
            }
            if buf.remaining() > 8 * k {
                return Err(WireError::Malformed(format!(
                    "{} trailing bytes after sparse payload",
                    buf.remaining() - 8 * k
                )));
            }
            let mut idx = Vec::with_capacity(k);
            let mut prev: Option<u32> = None;
            for _ in 0..k {
                let i = buf.get_u32_le();
                if i as usize >= n || prev.is_some_and(|p| i <= p) {
                    return Err(WireError::Malformed(
                        "top-k indices must be strictly ascending and in range".into(),
                    ));
                }
                prev = Some(i);
                idx.push(i);
            }
            // Pooled buffers are handed out fully zeroed, so unsent
            // coordinates decode to exactly 0.0.
            let mut data = pool::take_zeroed_f32(n);
            for &i in &idx {
                data[i as usize] = f32::from_bits(buf.get_u32_le());
            }
            pool::count_copied(8 * k);
            Ok((Tensor::from_vec(data, dims), codec))
        }
        Codec::F32Raw => unreachable!("rejected above"),
    }
}

/// Writes the shared `"MNC1", codec, rank, dims…` compressed-body
/// prefix into `buf`.
fn put_compressed_head(buf: &mut Vec<u8>, codec: Codec, dims: &[usize]) {
    buf.extend_from_slice(&COMPRESSED_MAGIC.to_le_bytes());
    buf.push(codec.tag());
    buf.extend_from_slice(&(dims.len() as u32).to_le_bytes());
    for &d in dims {
        buf.extend_from_slice(&(d as u64).to_le_bytes());
    }
}

fn encode_quantized(t: &Tensor, codec: Codec) -> Bytes {
    register_recycler();
    let dims = t.dims();
    let data = t.storage().read();
    let mut buf = pool::take_bytes(9 + 8 * dims.len() + 2 * data.len());
    put_compressed_head(&mut buf, codec, dims);
    if codec == Codec::F16 {
        lowp::encode_f16_le(&data, &mut buf);
    } else {
        lowp::encode_bf16_le(&data, &mut buf);
    }
    pool::count_copied(2 * data.len());
    drop(data);
    Bytes::from(buf)
}

/// Per-peer codec state: the negotiated scheme plus the error-feedback
/// residual accumulators the sparsifying codec carries between steps.
///
/// Each endpoint owns one `TensorCodec` per session and encodes every
/// outgoing tensor body through it; residuals are keyed by role
/// ([`ROLE_ACTIVATIONS`] / [`ROLE_GRADIENTS`]) so the two tensor
/// streams a peer sends never share a compensation buffer. The whole
/// struct serializes via [`TensorCodec::to_state`] so server-side
/// residuals survive crash-restore with the lossy trajectory intact.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorCodec {
    codec: Codec,
    residuals: BTreeMap<u8, Vec<f32>>,
}

impl Default for TensorCodec {
    fn default() -> Self {
        TensorCodec::new(Codec::F32Raw)
    }
}

impl TensorCodec {
    /// A codec state for the given negotiated scheme, with empty
    /// residuals.
    pub fn new(codec: Codec) -> Self {
        TensorCodec {
            codec,
            residuals: BTreeMap::new(),
        }
    }

    /// The negotiated scheme.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Re-negotiates the scheme, dropping any accumulated residuals
    /// (they are meaningless under a different codec).
    pub fn set_codec(&mut self, codec: Codec) {
        if self.codec != codec {
            self.residuals.clear();
        }
        self.codec = codec;
    }

    /// Encodes a tensor body under the negotiated scheme. For
    /// [`Codec::TopK8`] this folds the role's residual into the tensor
    /// before selection and retains what was not sent (error
    /// feedback), so calls mutate compression state and must happen
    /// exactly once per transmitted tensor.
    pub fn encode(&mut self, role: u8, t: &Tensor) -> Bytes {
        match self.codec {
            Codec::F32Raw => encode_tensor(t),
            Codec::F16 | Codec::BF16 => encode_quantized(t, self.codec),
            Codec::TopK8 => self.encode_topk(role, t),
        }
    }

    /// Decodes a tensor body, enforcing the negotiation: raw bodies
    /// are always accepted (every peer speaks the baseline), a
    /// compressed body is accepted only if its codec is the negotiated
    /// one.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for a compressed body under a codec
    /// the session did not negotiate, plus every error
    /// [`decode_tensor_any`] reports.
    pub fn decode(&self, bytes: &Bytes) -> Result<Tensor, WireError> {
        let (t, codec) = decode_tensor_any(bytes)?;
        if codec != Codec::F32Raw && codec != self.codec {
            return Err(WireError::Malformed(format!(
                "body uses codec {codec} but the session negotiated {}",
                self.codec
            )));
        }
        Ok(t)
    }

    fn encode_topk(&mut self, role: u8, t: &Tensor) -> Bytes {
        register_recycler();
        let dims = t.dims().to_vec();
        let data = t.storage().read();
        let n = data.len();
        let residual = self.residuals.entry(role).or_default();
        if residual.len() != n {
            // Shape changed (or first step): stale compensation from a
            // different geometry cannot be carried over.
            residual.clear();
            residual.resize(n, 0.0);
        }
        for (r, &x) in residual.iter_mut().zip(data.iter()) {
            *r += x;
        }
        drop(data);
        let k = n.div_ceil(TOPK_DIVISOR);
        let idx = lowp::top_k_by_magnitude(residual, k);
        let mut buf = pool::take_bytes(9 + 8 * dims.len() + 8 + 8 * idx.len());
        put_compressed_head(&mut buf, Codec::TopK8, &dims);
        buf.extend_from_slice(&(idx.len() as u64).to_le_bytes());
        for &i in &idx {
            buf.extend_from_slice(&i.to_le_bytes());
        }
        for &i in &idx {
            buf.extend_from_slice(&residual[i as usize].to_le_bytes());
        }
        // Sent coordinates leave the accumulator; unsent mass carries
        // forward into the next step's selection.
        for &i in &idx {
            residual[i as usize] = 0.0;
        }
        pool::count_copied(8 * idx.len());
        Bytes::from(buf)
    }

    /// Serializes the negotiated codec and residual accumulators for a
    /// durable snapshot.
    pub fn to_state(&self) -> Vec<u8> {
        let live: Vec<_> = self
            .residuals
            .iter()
            .filter(|(_, r)| !r.is_empty())
            .collect();
        let mut out = vec![self.codec.tag(), live.len() as u8];
        for (role, r) in live {
            out.push(*role);
            out.extend_from_slice(&(r.len() as u64).to_le_bytes());
            for v in r {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Restores a [`TensorCodec::to_state`] snapshot.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation, an unknown codec tag, or a
    /// residual length that disagrees with the payload.
    pub fn from_state(bytes: &[u8]) -> Result<Self, WireError> {
        let mut rest = bytes;
        let mut take = |n: usize| -> Result<&[u8], WireError> {
            if rest.len() < n {
                return Err(WireError::Truncated);
            }
            let (head, tail) = rest.split_at(n);
            rest = tail;
            Ok(head)
        };
        let head = take(2)?;
        let codec = Codec::from_tag(head[0])
            .ok_or_else(|| WireError::Malformed(format!("unknown codec tag {}", head[0])))?;
        let roles = head[1] as usize;
        let mut residuals = BTreeMap::new();
        for _ in 0..roles {
            let meta = take(9)?;
            let role = meta[0];
            let len = u64::from_le_bytes(meta[1..9].try_into().expect("8 bytes"));
            if len > MAX_ELEMS {
                return Err(WireError::Oversized(len));
            }
            let payload = take(4 * len as usize)?;
            let mut r = Vec::with_capacity(len as usize);
            for c in payload.chunks_exact(4) {
                r.push(f32::from_le_bytes(c.try_into().expect("4-byte chunk")));
            }
            if residuals.insert(role, r).is_some() {
                return Err(WireError::Malformed(format!(
                    "duplicate residual role {role}"
                )));
            }
        }
        if !rest.is_empty() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after codec state",
                rest.len()
            )));
        }
        Ok(TensorCodec { codec, residuals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_tensor(n: usize) -> Tensor {
        Tensor::from_vec(
            (0..n)
                .map(|i| ((i * 37 + 11) % 101) as f32 * 0.173 - 8.5)
                .collect(),
            [n],
        )
    }

    #[test]
    fn raw_codec_is_bit_identical_to_encode_tensor() {
        let t = test_tensor(64);
        let mut c = TensorCodec::new(Codec::F32Raw);
        assert_eq!(c.encode(ROLE_ACTIVATIONS, &t), encode_tensor(&t));
        let (back, codec) = decode_tensor_any(&encode_tensor(&t)).unwrap();
        assert_eq!(codec, Codec::F32Raw);
        assert_eq!(back.to_vec(), t.to_vec());
    }

    #[test]
    fn f16_and_bf16_round_trip_within_tolerance() {
        let t = test_tensor(333);
        for codec in [Codec::F16, Codec::BF16] {
            let mut c = TensorCodec::new(codec);
            let body = c.encode(ROLE_GRADIENTS, &t);
            assert_eq!(body.len() as u64, wire_size_with(codec, t.dims()));
            let back = c.decode(&body).unwrap();
            let rel = if codec == Codec::F16 {
                1.0 / 2048.0
            } else {
                1.0 / 256.0
            };
            for (x, y) in t.to_vec().iter().zip(back.to_vec()) {
                assert!((x - y).abs() <= x.abs() * rel + 1e-24, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn topk_sends_the_big_coordinates_and_banks_the_rest() {
        let mut vals = vec![0.01f32; 16];
        vals[3] = 5.0;
        vals[9] = -7.0;
        let t = Tensor::from_vec(vals.clone(), [16]);
        let mut enc = TensorCodec::new(Codec::TopK8);
        let body = enc.encode(ROLE_GRADIENTS, &t);
        assert_eq!(body.len() as u64, wire_size_with(Codec::TopK8, &[16]));
        let back = enc.decode(&body).unwrap().to_vec();
        // k = ceil(16/8) = 2: exactly the two spikes arrive.
        assert_eq!(back[3], 5.0);
        assert_eq!(back[9], -7.0);
        assert_eq!(back.iter().filter(|v| **v != 0.0).count(), 2);
        // Error feedback: the small coordinates accumulate and
        // eventually win selection.
        let zeros = Tensor::from_vec(vec![0.0; 16], [16]);
        let body2 = enc.encode(ROLE_GRADIENTS, &zeros);
        let back2 = enc.decode(&body2).unwrap().to_vec();
        assert_eq!(back2.iter().filter(|v| **v != 0.0).count(), 2);
        assert!(back2.iter().all(|v| *v == 0.0 || (*v - 0.01).abs() < 1e-7));
    }

    #[test]
    fn decode_enforces_the_negotiated_codec() {
        let t = test_tensor(8);
        let mut f16 = TensorCodec::new(Codec::F16);
        let body = f16.encode(ROLE_ACTIVATIONS, &t);
        // Raw is always accepted…
        let raw_session = TensorCodec::new(Codec::F32Raw);
        assert!(raw_session.decode(&encode_tensor(&t)).is_ok());
        // …but a compressed body under a non-negotiated codec is not.
        let err = raw_session.decode(&body).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)), "{err}");
        let bf16_session = TensorCodec::new(Codec::BF16);
        assert!(matches!(
            bf16_session.decode(&body),
            Err(WireError::Malformed(_))
        ));
        assert!(TensorCodec::new(Codec::F16).decode(&body).is_ok());
    }

    #[test]
    fn compressed_decode_rejects_damage() {
        let t = test_tensor(24);
        let mut enc = TensorCodec::new(Codec::TopK8);
        let body = enc.encode(ROLE_ACTIVATIONS, &t);
        for cut in 0..body.len() {
            assert!(decode_tensor_any(&body.slice(..cut)).is_err(), "cut={cut}");
        }
        let mut raw = body.to_vec();
        raw.push(0);
        assert!(matches!(
            decode_tensor_any(&Bytes::from(raw)),
            Err(WireError::Malformed(_))
        ));
        // A raw tag inside the compressed layout is non-canonical.
        let mut raw = body.to_vec();
        raw[4] = Codec::F32Raw.tag();
        assert!(matches!(
            decode_tensor_any(&Bytes::from(raw)),
            Err(WireError::Malformed(_))
        ));
        // Unknown codec tag.
        let mut raw = body.to_vec();
        raw[4] = 250;
        assert!(matches!(
            decode_tensor_any(&Bytes::from(raw)),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn topk_rejects_non_canonical_indices() {
        // Handcraft a body with out-of-order indices.
        let mut buf = Vec::new();
        put_compressed_head(&mut buf, Codec::TopK8, &[4]);
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // descending
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        buf.extend_from_slice(&2.0f32.to_le_bytes());
        assert!(matches!(
            decode_tensor_any(&Bytes::from(buf)),
            Err(WireError::Malformed(_))
        ));
        // Index out of range.
        let mut buf = Vec::new();
        put_compressed_head(&mut buf, Codec::TopK8, &[4]);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        assert!(matches!(
            decode_tensor_any(&Bytes::from(buf)),
            Err(WireError::Malformed(_))
        ));
        // k > n.
        let mut buf = Vec::new();
        put_compressed_head(&mut buf, Codec::TopK8, &[4]);
        buf.extend_from_slice(&5u64.to_le_bytes());
        assert!(matches!(
            decode_tensor_any(&Bytes::from(buf)),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn negotiation_picks_best_common_and_falls_back_to_raw() {
        let all = supported_codec_mask();
        assert_eq!(negotiate(Codec::F16.flag(), all), Codec::F16);
        assert_eq!(
            negotiate(Codec::TopK8.flag() | Codec::F16.flag(), all),
            Codec::TopK8
        );
        // v1.1 peer: advertised nothing.
        assert_eq!(negotiate(0, all), Codec::F32Raw);
        // Mismatched sets.
        assert_eq!(
            negotiate(Codec::F16.flag(), Codec::BF16.flag()),
            Codec::F32Raw
        );
        // Unknown/reserved bits are ignored.
        assert_eq!(negotiate(1 << 40, all), Codec::F32Raw);
        assert_eq!(negotiate(Codec::BF16.flag() | (1 << 63), all), Codec::BF16);
        // Raw-only advertisement.
        assert_eq!(negotiate(Codec::F32Raw.flag(), all), Codec::F32Raw);
    }

    #[test]
    fn codec_names_round_trip() {
        for c in Codec::ALL {
            assert_eq!(Codec::parse(c.name()), Some(c));
            assert_eq!(Codec::from_tag(c.tag()), Some(c));
        }
        assert_eq!(Codec::parse("raw"), Some(Codec::F32Raw));
        assert_eq!(Codec::parse("zstd"), None);
        assert_eq!(Codec::from_tag(9), None);
    }

    #[test]
    fn codec_state_round_trips_with_residuals() {
        let t = test_tensor(40);
        let mut enc = TensorCodec::new(Codec::TopK8);
        enc.encode(ROLE_ACTIVATIONS, &t);
        enc.encode(ROLE_GRADIENTS, &test_tensor(24));
        let state = enc.to_state();
        let back = TensorCodec::from_state(&state).unwrap();
        assert_eq!(back, enc);
        // Truncation at every prefix is a typed error.
        for cut in 0..state.len() {
            assert!(TensorCodec::from_state(&state[..cut]).is_err(), "cut={cut}");
        }
        // Empty-residual state round-trips too.
        let fresh = TensorCodec::new(Codec::F16);
        assert_eq!(TensorCodec::from_state(&fresh.to_state()).unwrap(), fresh);
    }

    #[test]
    fn set_codec_drops_residuals_on_change() {
        let mut enc = TensorCodec::new(Codec::TopK8);
        enc.encode(ROLE_ACTIVATIONS, &test_tensor(16));
        enc.set_codec(Codec::TopK8); // no-op keeps residuals
        assert!(!enc.residuals.is_empty());
        enc.set_codec(Codec::F16);
        assert!(enc.residuals.is_empty());
    }

    #[test]
    fn wire_size_with_matches_real_encodings() {
        for codec in Codec::ALL {
            let t = Tensor::from_vec((0..60).map(|i| i as f32).collect(), [3, 4, 5]);
            let mut enc = TensorCodec::new(codec);
            let body = enc.encode(ROLE_ACTIVATIONS, &t);
            assert_eq!(
                body.len() as u64,
                wire_size_with(codec, &[3, 4, 5]),
                "{codec}"
            );
        }
    }
}

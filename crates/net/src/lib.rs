//! # menos-net — simulated WAN transport for split fine-tuning
//!
//! The paper's clients talk to the server across the public Internet
//! (Toronto ↔ the Cedar cluster in Vancouver). This crate models that
//! path on the virtual clock: [`WanLink`] converts message bytes into
//! deterministic-but-jittered transfer times, and the wire codec
//! ([`encode_tensor`] / [`decode_tensor`]) gives every activation and
//! gradient tensor an honest byte size.
//!
//! # Examples
//!
//! ```
//! use menos_net::{encode_tensor, WanLink};
//! use menos_tensor::Tensor;
//!
//! let activations = Tensor::zeros([4, 100, 4096]); // Llama batch
//! let frame = encode_tensor(&activations);
//! let mut link = WanLink::geo_distributed(0);
//! let t = link.transfer_time(frame.len() as u64);
//! assert!((0.6..1.2).contains(&t.as_secs_f64())); // ≈0.85 s at 8 MB/s
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod compress;
mod heartbeat;
mod link;
mod nonblocking;
mod wire;

pub use compress::{
    decode_tensor_any, negotiate, supported_codec_mask, wire_size_with, Codec, TensorCodec,
    ROLE_ACTIVATIONS, ROLE_GRADIENTS,
};
pub use heartbeat::{HeartbeatMonitor, HeartbeatVerdict};
pub use link::WanLink;
pub use nonblocking::{FrameAccumulator, WriteQueue};
pub use wire::{
    decode_frame, decode_frame_parts, decode_tensor, encode_frame, encode_frame_header,
    encode_tensor, read_frame_bytes, wire_size, write_frame_vectored, FrameError, WireError,
    DEFAULT_MAX_FRAME, FRAME_HEADER_BYTES, WIRE_VERSION,
};

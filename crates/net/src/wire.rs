//! Tensor wire format.
//!
//! Split learning exchanges real tensors (activations and gradients)
//! between client and server. Serializing them to an explicit byte
//! format keeps message sizes honest — the simulated link charges for
//! exactly the bytes a real deployment would move.
//!
//! Layout (little-endian): `u32` magic, `u32` rank, `u64` dims…,
//! `f32` data….

use bytes::{Buf, BufMut, Bytes, BytesMut};

use menos_tensor::Tensor;

const MAGIC: u32 = 0x4d4e_5331; // "MNS1"

/// Errors decoding a tensor from the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Message too short for the declared layout.
    Truncated,
    /// Magic number mismatch — not a tensor frame.
    BadMagic(u32),
    /// Declared shape is implausibly large.
    Oversized(u64),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated tensor frame"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            WireError::Oversized(n) => write!(f, "declared element count {n} too large"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum element count a frame may declare (guards against corrupt
/// length prefixes).
const MAX_ELEMS: u64 = 1 << 32;

/// Serializes a tensor to its wire representation.
///
/// # Examples
///
/// ```
/// use menos_net::{decode_tensor, encode_tensor};
/// use menos_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// let bytes = encode_tensor(&t);
/// let back = decode_tensor(&bytes).unwrap();
/// assert_eq!(back.dims(), t.dims());
/// assert_eq!(back.to_vec(), t.to_vec());
/// ```
pub fn encode_tensor(t: &Tensor) -> Bytes {
    let dims = t.dims();
    let mut buf = BytesMut::with_capacity(8 + 8 * dims.len() + 4 * t.elem_count());
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(dims.len() as u32);
    for &d in dims {
        buf.put_u64_le(d as u64);
    }
    for &v in t.storage().read().iter() {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Deserializes a tensor from its wire representation.
///
/// # Errors
///
/// Returns [`WireError`] on truncation, magic mismatch, or an
/// implausible shape.
pub fn decode_tensor(bytes: &Bytes) -> Result<Tensor, WireError> {
    let mut buf = bytes.clone();
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let rank = buf.get_u32_le() as usize;
    if buf.remaining() < 8 * rank {
        return Err(WireError::Truncated);
    }
    let mut dims = Vec::with_capacity(rank);
    let mut elems: u64 = 1;
    for _ in 0..rank {
        let d = buf.get_u64_le();
        elems = elems.saturating_mul(d.max(1));
        if elems > MAX_ELEMS {
            return Err(WireError::Oversized(elems));
        }
        dims.push(d as usize);
    }
    let n: usize = dims.iter().product();
    if buf.remaining() < 4 * n {
        return Err(WireError::Truncated);
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Ok(Tensor::from_vec(data, dims))
}

/// The exact number of wire bytes [`encode_tensor`] produces for a
/// tensor of the given shape — used by the analytic engine to charge
/// the link without materializing data.
pub fn wire_size(dims: &[usize]) -> u64 {
    let elems: usize = dims.iter().product();
    8 + 8 * dims.len() as u64 + 4 * elems as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_shapes() {
        for dims in [vec![1], vec![3, 4], vec![2, 3, 4], vec![1, 2, 1, 2]] {
            let n: usize = dims.iter().product();
            let t = Tensor::from_vec((0..n).map(|i| i as f32 * 0.5 - 1.0).collect(), dims.clone());
            let b = encode_tensor(&t);
            assert_eq!(b.len() as u64, wire_size(&dims));
            let back = decode_tensor(&b).unwrap();
            assert_eq!(back.dims(), t.dims());
            assert_eq!(back.to_vec(), t.to_vec());
        }
    }

    #[test]
    fn scalar_round_trip() {
        let t = Tensor::scalar(42.0);
        let back = decode_tensor(&encode_tensor(&t)).unwrap();
        assert_eq!(back.to_scalar(), 42.0);
    }

    #[test]
    fn truncated_frames_rejected() {
        let t = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let full = encode_tensor(&t);
        for cut in [0, 4, 7, full.len() - 1] {
            let partial = full.slice(..cut);
            assert!(
                matches!(decode_tensor(&partial), Err(WireError::Truncated)),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u32_le(0);
        let err = decode_tensor(&buf.freeze()).unwrap_err();
        assert!(matches!(err, WireError::BadMagic(0xDEAD_BEEF)));
    }

    #[test]
    fn oversized_shape_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(2);
        buf.put_u64_le(u64::MAX / 2);
        buf.put_u64_le(u64::MAX / 2);
        let err = decode_tensor(&buf.freeze()).unwrap_err();
        assert!(matches!(err, WireError::Oversized(_)));
    }

    #[test]
    fn wire_size_matches_paper_transfer_sizes() {
        // OPT activations [16, 100, 2048] ≈ 13.1 MB.
        let opt = wire_size(&[16, 100, 2048]) as f64 / 1e6;
        assert!((12.5..13.5).contains(&opt), "OPT {opt} MB");
        // Llama activations [4, 100, 4096] ≈ 6.5 MB.
        let llama = wire_size(&[4, 100, 4096]) as f64 / 1e6;
        assert!((6.2..6.8).contains(&llama), "Llama {llama} MB");
    }

    #[test]
    fn error_display() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::BadMagic(1).to_string().contains("magic"));
        assert!(WireError::Oversized(9).to_string().contains("9"));
    }
}

//! The split-protocol wire format: tensor payloads and versioned
//! protocol frames.
//!
//! Split learning exchanges real tensors (activations and gradients)
//! between client and server. Serializing them to an explicit byte
//! format keeps message sizes honest — the simulated link charges for
//! exactly the bytes a real deployment would move.
//!
//! Two layers live here:
//!
//! * **Tensor payloads** ([`encode_tensor`] / [`decode_tensor`]):
//!   `u32` magic, `u32` rank, `u64` dims…, `f32` data… (little-endian).
//! * **Protocol frames** ([`encode_frame`] / [`decode_frame`] /
//!   [`read_frame_bytes`]): a fixed 18-byte header — `u32` magic,
//!   `u8` version, `u8` message kind, `u64` client id, `u32` payload
//!   length — followed by the payload. The header is validated (and
//!   the declared length checked against a configurable cap) *before*
//!   any payload allocation, so a hostile length prefix cannot OOM a
//!   server.

use std::io;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use menos_tensor::{pool, Tensor};

/// Routes buffer allocations dropped by the `bytes` layer into the
/// tensor buffer pool, so frame bodies are recycled across steps.
/// Idempotent; called from every codec entry point that allocates.
pub(crate) fn register_recycler() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| bytes::set_buffer_recycler(pool::recycle_bytes));
}

pub(crate) const MAGIC: u32 = 0x4d4e_5331; // "MNS1"
pub(crate) const COMPRESSED_MAGIC: u32 = 0x4d4e_4331; // "MNC1" (§7 bodies)
pub(crate) const FRAME_MAGIC: u32 = 0x4d4e_5031; // "MNP1"

/// Version byte stamped into every protocol frame header.
pub const WIRE_VERSION: u8 = 1;

/// Bytes of the fixed protocol frame header: magic (4), version (1),
/// kind (1), client id (8), payload length (4).
pub const FRAME_HEADER_BYTES: u64 = 18;

/// Default cap on a single frame's payload (64 MiB) — far above any
/// activation tensor the tiny real engine moves, far below an
/// allocation that could hurt the host.
pub const DEFAULT_MAX_FRAME: usize = 64 << 20;

/// Errors decoding a frame or tensor from the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Message too short for the declared layout.
    Truncated,
    /// Magic number mismatch — not a tensor/protocol frame.
    BadMagic(u32),
    /// Declared shape is implausibly large.
    Oversized(u64),
    /// Frame version this codec does not speak.
    BadVersion(u8),
    /// Message kind byte not in the protocol.
    UnknownKind(u8),
    /// Declared payload length exceeds the configured cap.
    TooLarge {
        /// Length the peer declared.
        declared: u64,
        /// The configured maximum.
        max: u64,
    },
    /// A frame would stage more reassembly bytes than the per-session
    /// cap allows (anti-slow-drip bound; at most the frame cap).
    StagedOverflow {
        /// Header + payload bytes the frame would stage.
        needed: u64,
        /// The configured per-session staging cap.
        cap: u64,
    },
    /// Payload present but structurally invalid.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            WireError::Oversized(n) => write!(f, "declared element count {n} too large"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            WireError::TooLarge { declared, max } => {
                write!(f, "declared frame length {declared} exceeds cap {max}")
            }
            WireError::StagedOverflow { needed, cap } => {
                write!(f, "frame stages {needed} bytes, per-session cap is {cap}")
            }
            WireError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Errors reading a frame from a byte stream: either the transport
/// failed ([`FrameError::Io`]) or the peer sent bytes that do not
/// decode ([`FrameError::Wire`]).
#[derive(Debug)]
pub enum FrameError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The bytes read do not form a valid frame.
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Wire(e) => write!(f, "frame decode error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Wire(e) => Some(e),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// Serializes just a protocol frame header. Exposed so fault-injection
/// tests can fabricate hostile headers (e.g. an absurd declared
/// length) without reimplementing the layout.
pub fn encode_frame_header(kind: u8, client: u64, payload_len: u32) -> Bytes {
    let mut buf = BytesMut::with_capacity(FRAME_HEADER_BYTES as usize);
    buf.put_u32_le(FRAME_MAGIC);
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(kind);
    buf.put_u64_le(client);
    buf.put_u32_le(payload_len);
    buf.freeze()
}

/// Serializes a complete protocol frame: header + payload.
///
/// # Panics
///
/// Panics if the payload exceeds `u32::MAX` bytes (no real message
/// comes within orders of magnitude of that).
pub fn encode_frame(kind: u8, client: u64, payload: &[u8]) -> Bytes {
    register_recycler();
    let len = u32::try_from(payload.len()).expect("payload exceeds u32::MAX bytes");
    let mut buf = pool::take_bytes(FRAME_HEADER_BYTES as usize + payload.len());
    buf.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    buf.push(WIRE_VERSION);
    buf.push(kind);
    buf.extend_from_slice(&client.to_le_bytes());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    pool::count_copied(payload.len());
    Bytes::from(buf)
}

/// Decodes a protocol frame delivered as separate header and body
/// buffers, returning `(kind, client, payload)` with the payload
/// shared by reference (no copy).
///
/// # Errors
///
/// Rejects a short header, bad magic/version, a declared length above
/// `max_frame`, and a body whose length disagrees with the header.
pub fn decode_frame_parts(
    header: &[u8],
    body: &Bytes,
    max_frame: usize,
) -> Result<(u8, u64, Bytes), WireError> {
    if header.len() < FRAME_HEADER_BYTES as usize {
        return Err(WireError::Truncated);
    }
    if header.len() > FRAME_HEADER_BYTES as usize {
        return Err(WireError::Malformed(format!(
            "{} extra header bytes",
            header.len() - FRAME_HEADER_BYTES as usize
        )));
    }
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = header[4];
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = header[5];
    let client = u64::from_le_bytes(header[6..14].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(header[14..18].try_into().expect("4 bytes")) as usize;
    if len > max_frame {
        return Err(WireError::TooLarge {
            declared: len as u64,
            max: max_frame as u64,
        });
    }
    if body.len() < len {
        return Err(WireError::Truncated);
    }
    if body.len() > len {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after declared payload",
            body.len() - len
        )));
    }
    Ok((kind, client, body.clone()))
}

/// Writes a frame given as `[header, body]` slices with vectored I/O,
/// avoiding an intermediate contiguous copy. Retries short writes
/// until both slices are fully flushed.
///
/// # Errors
///
/// Propagates writer errors; a zero-length write surfaces as
/// [`io::ErrorKind::WriteZero`].
pub fn write_frame_vectored(w: &mut impl io::Write, header: &[u8], body: &[u8]) -> io::Result<()> {
    let mut head = header;
    let mut tail = body;
    while !head.is_empty() || !tail.is_empty() {
        let n = if head.is_empty() {
            w.write(tail)?
        } else if tail.is_empty() {
            w.write(head)?
        } else {
            w.write_vectored(&[io::IoSlice::new(head), io::IoSlice::new(tail)])?
        };
        if n == 0 {
            return Err(io::ErrorKind::WriteZero.into());
        }
        let from_head = n.min(head.len());
        head = &head[from_head..];
        tail = &tail[n - from_head..];
    }
    Ok(())
}

/// Decodes a complete protocol frame from a contiguous buffer,
/// returning `(kind, client, payload)`.
///
/// # Errors
///
/// Rejects truncation at any prefix, bad magic/version, a declared
/// payload length above `max_frame`, and trailing bytes past the
/// declared length.
pub fn decode_frame(bytes: &Bytes, max_frame: usize) -> Result<(u8, u64, Bytes), WireError> {
    let mut buf = bytes.clone();
    if buf.remaining() < FRAME_HEADER_BYTES as usize {
        return Err(WireError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = buf.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = buf.get_u8();
    let client = buf.get_u64_le();
    let len = buf.get_u32_le() as usize;
    if len > max_frame {
        return Err(WireError::TooLarge {
            declared: len as u64,
            max: max_frame as u64,
        });
    }
    if buf.remaining() < len {
        return Err(WireError::Truncated);
    }
    if buf.remaining() > len {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after declared payload",
            buf.remaining() - len
        )));
    }
    let payload = bytes.slice(FRAME_HEADER_BYTES as usize..);
    Ok((kind, client, payload))
}

/// Reads one complete protocol frame (header + payload) from a byte
/// stream, returning the raw frame bytes ready for
/// [`decode_frame`]. The header is validated and the declared length
/// checked against `max_frame` **before** the payload buffer is
/// allocated — a hostile length prefix yields a typed error, not an
/// allocation.
///
/// # Errors
///
/// [`FrameError::Io`] on reader failure (including EOF mid-frame);
/// [`FrameError::Wire`] on bad magic/version or an oversize
/// declaration.
pub fn read_frame_bytes(r: &mut impl io::Read, max_frame: usize) -> Result<Bytes, FrameError> {
    let mut header = [0u8; FRAME_HEADER_BYTES as usize];
    r.read_exact(&mut header)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic(magic).into());
    }
    let version = header[4];
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version).into());
    }
    let len = u32::from_le_bytes(header[14..18].try_into().expect("4 bytes")) as usize;
    if len > max_frame {
        return Err(WireError::TooLarge {
            declared: len as u64,
            max: max_frame as u64,
        }
        .into());
    }
    register_recycler();
    let mut frame = pool::take_bytes(FRAME_HEADER_BYTES as usize + len);
    frame.extend_from_slice(&header);
    frame.resize(FRAME_HEADER_BYTES as usize + len, 0);
    r.read_exact(&mut frame[FRAME_HEADER_BYTES as usize..])?;
    Ok(Bytes::from(frame))
}

/// Maximum element count a frame may declare (guards against corrupt
/// length prefixes).
pub(crate) const MAX_ELEMS: u64 = 1 << 32;

/// Serializes a tensor to its wire representation.
///
/// # Examples
///
/// ```
/// use menos_net::{decode_tensor, encode_tensor};
/// use menos_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// let bytes = encode_tensor(&t);
/// let back = decode_tensor(&bytes).unwrap();
/// assert_eq!(back.dims(), t.dims());
/// assert_eq!(back.to_vec(), t.to_vec());
/// ```
pub fn encode_tensor(t: &Tensor) -> Bytes {
    register_recycler();
    let dims = t.dims();
    let data = t.storage().read();
    let mut buf = pool::take_bytes(8 + 8 * dims.len() + 4 * data.len());
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&(dims.len() as u32).to_le_bytes());
    for &d in dims {
        buf.extend_from_slice(&(d as u64).to_le_bytes());
    }
    // Bulk f32 → LE conversion: one grow, then fixed 4-byte stores the
    // compiler vectorizes — no per-element `put_f32_le` dispatch.
    let head = buf.len();
    buf.resize(head + 4 * data.len(), 0);
    for (dst, &v) in buf[head..].chunks_exact_mut(4).zip(data.iter()) {
        dst.copy_from_slice(&v.to_le_bytes());
    }
    pool::count_copied(4 * data.len());
    drop(data);
    Bytes::from(buf)
}

/// Deserializes a tensor from its wire representation.
///
/// # Errors
///
/// Returns [`WireError`] on truncation, magic mismatch, or an
/// implausible shape.
pub fn decode_tensor(bytes: &Bytes) -> Result<Tensor, WireError> {
    let mut buf = bytes.clone();
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let rank = buf.get_u32_le() as usize;
    if buf.remaining() < 8 * rank {
        return Err(WireError::Truncated);
    }
    let mut dims = Vec::with_capacity(rank);
    let mut elems: u64 = 1;
    for _ in 0..rank {
        let d = buf.get_u64_le();
        elems = elems.saturating_mul(d.max(1));
        if elems > MAX_ELEMS {
            return Err(WireError::Oversized(elems));
        }
        dims.push(d as usize);
    }
    let n: usize = dims.iter().product();
    if buf.remaining() < 4 * n {
        return Err(WireError::Truncated);
    }
    // Bulk LE → f32 conversion into a pooled buffer. The pooled take
    // is empty (length 0), so no recycled contents are observable;
    // every element below is freshly decoded from the frame.
    let mut data = pool::take_f32(n);
    data.extend(
        buf[..4 * n]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk"))),
    );
    pool::count_copied(4 * n);
    Ok(Tensor::from_vec(data, dims))
}

/// The exact number of wire bytes [`encode_tensor`] produces for a
/// tensor of the given shape — used by the analytic engine to charge
/// the link without materializing data.
pub fn wire_size(dims: &[usize]) -> u64 {
    let elems: usize = dims.iter().product();
    8 + 8 * dims.len() as u64 + 4 * elems as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_shapes() {
        for dims in [vec![1], vec![3, 4], vec![2, 3, 4], vec![1, 2, 1, 2]] {
            let n: usize = dims.iter().product();
            let t = Tensor::from_vec((0..n).map(|i| i as f32 * 0.5 - 1.0).collect(), dims.clone());
            let b = encode_tensor(&t);
            assert_eq!(b.len() as u64, wire_size(&dims));
            let back = decode_tensor(&b).unwrap();
            assert_eq!(back.dims(), t.dims());
            assert_eq!(back.to_vec(), t.to_vec());
        }
    }

    #[test]
    fn scalar_round_trip() {
        let t = Tensor::scalar(42.0);
        let back = decode_tensor(&encode_tensor(&t)).unwrap();
        assert_eq!(back.to_scalar(), 42.0);
    }

    #[test]
    fn truncated_frames_rejected() {
        let t = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let full = encode_tensor(&t);
        for cut in [0, 4, 7, full.len() - 1] {
            let partial = full.slice(..cut);
            assert!(
                matches!(decode_tensor(&partial), Err(WireError::Truncated)),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u32_le(0);
        let err = decode_tensor(&buf.freeze()).unwrap_err();
        assert!(matches!(err, WireError::BadMagic(0xDEAD_BEEF)));
    }

    #[test]
    fn oversized_shape_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(2);
        buf.put_u64_le(u64::MAX / 2);
        buf.put_u64_le(u64::MAX / 2);
        let err = decode_tensor(&buf.freeze()).unwrap_err();
        assert!(matches!(err, WireError::Oversized(_)));
    }

    #[test]
    fn wire_size_matches_paper_transfer_sizes() {
        // OPT activations [16, 100, 2048] ≈ 13.1 MB.
        let opt = wire_size(&[16, 100, 2048]) as f64 / 1e6;
        assert!((12.5..13.5).contains(&opt), "OPT {opt} MB");
        // Llama activations [4, 100, 4096] ≈ 6.5 MB.
        let llama = wire_size(&[4, 100, 4096]) as f64 / 1e6;
        assert!((6.2..6.8).contains(&llama), "Llama {llama} MB");
    }

    #[test]
    fn error_display() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::BadMagic(1).to_string().contains("magic"));
        assert!(WireError::Oversized(9).to_string().contains("9"));
        assert!(WireError::BadVersion(9).to_string().contains("version 9"));
        assert!(WireError::UnknownKind(42).to_string().contains("42"));
        assert!(WireError::TooLarge {
            declared: 100,
            max: 10
        }
        .to_string()
        .contains("100"));
        assert!(WireError::Malformed("x".into()).to_string().contains("x"));
    }

    #[test]
    fn frame_round_trip() {
        let frame = encode_frame(3, 77, b"hello payload");
        assert_eq!(frame.len() as u64, FRAME_HEADER_BYTES + 13);
        let (kind, client, payload) = decode_frame(&frame, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(kind, 3);
        assert_eq!(client, 77);
        assert_eq!(&payload[..], b"hello payload");
    }

    #[test]
    fn frame_rejects_truncation_at_every_prefix() {
        let frame = encode_frame(1, 5, b"abcdef");
        for cut in 0..frame.len() {
            let partial = frame.slice(..cut);
            assert!(
                matches!(
                    decode_frame(&partial, DEFAULT_MAX_FRAME),
                    Err(WireError::Truncated)
                ),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn frame_rejects_bad_version_and_trailing_bytes() {
        let frame = encode_frame(1, 5, b"abc");
        let mut raw = frame.to_vec();
        raw[4] = 9; // version byte
        assert!(matches!(
            decode_frame(&Bytes::from(raw), DEFAULT_MAX_FRAME),
            Err(WireError::BadVersion(9))
        ));
        let mut raw = frame.to_vec();
        raw.push(0);
        assert!(matches!(
            decode_frame(&Bytes::from(raw), DEFAULT_MAX_FRAME),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn frame_rejects_oversize_declaration_without_allocating() {
        // A hostile header declaring a u32::MAX-byte payload must be
        // rejected from the 18 header bytes alone.
        let header = encode_frame_header(2, 0, u32::MAX);
        let err = decode_frame(&header, DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, WireError::TooLarge { .. }));

        let mut reader = std::io::Cursor::new(header.to_vec());
        let err = read_frame_bytes(&mut reader, DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, FrameError::Wire(WireError::TooLarge { .. })));
        // Nothing past the header was consumed.
        assert_eq!(reader.position(), FRAME_HEADER_BYTES);
    }

    #[test]
    fn frame_stream_round_trip() {
        let a = encode_frame(1, 1, b"first");
        let b = encode_frame(2, 2, &encode_tensor(&Tensor::zeros([2, 2])));
        let mut stream = a.to_vec();
        stream.extend_from_slice(&b);
        let mut reader = std::io::Cursor::new(stream);
        let got_a = read_frame_bytes(&mut reader, DEFAULT_MAX_FRAME).unwrap();
        let got_b = read_frame_bytes(&mut reader, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(got_a, a);
        assert_eq!(got_b, b);
        // EOF surfaces as an I/O error, not a panic.
        let err = read_frame_bytes(&mut reader, DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)));
    }
}

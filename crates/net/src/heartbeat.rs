//! Failure detection by missed heartbeats.
//!
//! A fleet coordinator (PROTOCOL.md §9.1) probes each backend with
//! `Ping` frames and declares it dead after `max_missed` *consecutive*
//! unanswered probes. This module holds the accounting only: a
//! [`HeartbeatMonitor`] is a deterministic state machine fed by the
//! caller's probe loop — it owns no socket and reads no clock, so the
//! same probe/reply sequence always yields the same verdict regardless
//! of scheduling. That matters because the whole point of a
//! deadline-based detector is to catch deaths that produce *no* socket
//! event (SIGKILL with the port lingering, a silent partition): the
//! detector must key off absence of replies, never off a FIN.
//!
//! The protocol is strict request/reply: each [`tick`] issues a fresh
//! sequence number and simultaneously rules on the previous one — a
//! probe still outstanding when the next tick fires counts as missed.
//! Replies are matched by exact sequence number, so a stale `Pong`
//! surfacing after a blip cannot retroactively clear newer misses it
//! knows nothing about.
//!
//! [`tick`]: HeartbeatMonitor::tick

use std::time::Duration;

/// What one [`HeartbeatMonitor::tick`] ruled about the *previous*
/// probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatVerdict {
    /// The previous probe was answered (or this is the first probe).
    Healthy,
    /// The previous probe went unanswered, but the consecutive-miss
    /// count is still below the death threshold.
    Missed,
    /// Consecutive misses reached `max_missed`: the peer is dead until
    /// [`HeartbeatMonitor::reset`].
    Dead,
}

/// Per-peer heartbeat accounting for a health-check loop.
///
/// # Examples
///
/// ```
/// use menos_net::{HeartbeatMonitor, HeartbeatVerdict};
///
/// let mut hb = HeartbeatMonitor::new(std::time::Duration::from_millis(50), 3);
/// let seq = hb.tick().0;        // probe 0 goes out
/// assert!(hb.note_reply(seq));  // ...and is answered
/// hb.tick();                    // probe 1 goes out
/// hb.tick();                    // unanswered: 1 consecutive miss
/// hb.tick();                    // unanswered: 2
/// let (_, verdict) = hb.tick(); // unanswered: 3 of 3 — dead
/// assert_eq!(verdict, HeartbeatVerdict::Dead);
/// assert!(hb.is_dead());
/// ```
#[derive(Debug, Clone)]
pub struct HeartbeatMonitor {
    interval: Duration,
    max_missed: u32,
    next_seq: u64,
    outstanding: Option<u64>,
    consecutive_missed: u32,
    total_missed: u64,
    replies: u64,
    dead: bool,
    last_live_sessions: u64,
    last_utilization_pct: u64,
}

impl HeartbeatMonitor {
    /// A monitor that declares death after `max_missed` consecutive
    /// unanswered probes sent `interval` apart. `max_missed` is
    /// clamped to at least 1 — a threshold of 0 would declare a peer
    /// dead before the first probe is even ruled on.
    pub fn new(interval: Duration, max_missed: u32) -> Self {
        HeartbeatMonitor {
            interval,
            max_missed: max_missed.max(1),
            next_seq: 0,
            outstanding: None,
            consecutive_missed: 0,
            total_missed: 0,
            replies: 0,
            dead: false,
            last_live_sessions: 0,
            last_utilization_pct: 0,
        }
    }

    /// How long the probe loop should sleep between [`tick`]s. The
    /// monitor never reads a clock itself; the loop owns the cadence.
    ///
    /// [`tick`]: HeartbeatMonitor::tick
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Issues the next probe: returns the sequence number to send and
    /// the verdict on the probe *before* it. Counting at the next tick
    /// (rather than on a reply timeout) makes one tick = one probe =
    /// one ruling, so `max_missed` ticks bound detection latency
    /// exactly.
    pub fn tick(&mut self) -> (u64, HeartbeatVerdict) {
        let verdict = if self.outstanding.is_some() {
            self.consecutive_missed += 1;
            self.total_missed += 1;
            if self.consecutive_missed >= self.max_missed {
                self.dead = true;
                HeartbeatVerdict::Dead
            } else {
                HeartbeatVerdict::Missed
            }
        } else {
            HeartbeatVerdict::Healthy
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.outstanding = Some(seq);
        (seq, verdict)
    }

    /// Records a `Pong` for probe `seq`. Only the currently
    /// outstanding sequence clears the miss streak; anything else is a
    /// stale duplicate and is ignored (returns `false`). A reply never
    /// resurrects a peer already ruled dead — failover has started and
    /// a late pong must not race it; the coordinator re-admits a
    /// recovered backend explicitly via [`reset`].
    ///
    /// [`reset`]: HeartbeatMonitor::reset
    pub fn note_reply(&mut self, seq: u64) -> bool {
        if self.dead || self.outstanding != Some(seq) {
            return false;
        }
        self.outstanding = None;
        self.consecutive_missed = 0;
        self.replies += 1;
        true
    }

    /// [`note_reply`] plus the telemetry a v1.4 `Pong` carries
    /// (PROTOCOL.md §3.7); stored only if the reply is accepted.
    ///
    /// [`note_reply`]: HeartbeatMonitor::note_reply
    pub fn note_pong(&mut self, seq: u64, live_sessions: u64, utilization_pct: u64) -> bool {
        if !self.note_reply(seq) {
            return false;
        }
        self.last_live_sessions = live_sessions;
        self.last_utilization_pct = utilization_pct;
        true
    }

    /// Whether the peer has been ruled dead (sticky until [`reset`]).
    ///
    /// [`reset`]: HeartbeatMonitor::reset
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Clears the death ruling and the miss streak, e.g. after the
    /// coordinator restarts or re-admits the backend. Sequence numbers
    /// keep advancing so pre-reset pongs stay unmatchable.
    pub fn reset(&mut self) {
        self.dead = false;
        self.consecutive_missed = 0;
        self.outstanding = None;
    }

    /// Unanswered probes in the current streak.
    pub fn consecutive_missed(&self) -> u32 {
        self.consecutive_missed
    }

    /// Unanswered probes over the monitor's lifetime — the
    /// `heartbeats_missed` stat a fleet reports per backend.
    pub fn total_missed(&self) -> u64 {
        self.total_missed
    }

    /// Accepted replies over the monitor's lifetime.
    pub fn replies(&self) -> u64 {
        self.replies
    }

    /// `live_sessions` from the most recent accepted pong — the
    /// memory-aware placement signal.
    pub fn last_live_sessions(&self) -> u64 {
        self.last_live_sessions
    }

    /// `utilization_pct` from the most recent accepted pong.
    pub fn last_utilization_pct(&self) -> u64 {
        self.last_utilization_pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(max_missed: u32) -> HeartbeatMonitor {
        HeartbeatMonitor::new(Duration::from_millis(10), max_missed)
    }

    #[test]
    fn answered_probes_never_accumulate_misses() {
        let mut hb = monitor(3);
        for _ in 0..100 {
            let (seq, verdict) = hb.tick();
            assert_eq!(verdict, HeartbeatVerdict::Healthy);
            assert!(hb.note_pong(seq, 5, 40));
        }
        assert!(!hb.is_dead());
        assert_eq!(hb.total_missed(), 0);
        assert_eq!(hb.replies(), 100);
        assert_eq!(hb.last_live_sessions(), 5);
        assert_eq!(hb.last_utilization_pct(), 40);
    }

    #[test]
    fn max_missed_consecutive_silences_rule_the_peer_dead() {
        let mut hb = monitor(3);
        hb.tick(); // probe 0, never answered
        assert_eq!(hb.tick().1, HeartbeatVerdict::Missed);
        assert_eq!(hb.tick().1, HeartbeatVerdict::Missed);
        assert_eq!(hb.tick().1, HeartbeatVerdict::Dead);
        assert!(hb.is_dead());
        assert_eq!(hb.consecutive_missed(), 3);
        assert_eq!(hb.total_missed(), 3);
    }

    #[test]
    fn a_reply_resets_the_streak_but_not_the_lifetime_count() {
        let mut hb = monitor(3);
        hb.tick(); // probe 0 unanswered
        let (seq, verdict) = hb.tick(); // miss 1, probe 1 out
        assert_eq!(verdict, HeartbeatVerdict::Missed);
        assert!(hb.note_reply(seq));
        assert_eq!(hb.consecutive_missed(), 0);
        assert_eq!(hb.total_missed(), 1, "lifetime count is monotonic");
        // A fresh streak must again take the full max_missed.
        hb.tick();
        assert_eq!(hb.tick().1, HeartbeatVerdict::Missed);
        assert!(!hb.is_dead());
    }

    #[test]
    fn stale_and_unknown_sequences_are_ignored() {
        let mut hb = monitor(2);
        let (first, _) = hb.tick();
        let (second, _) = hb.tick(); // first is now ruled missed
        assert!(
            !hb.note_reply(first),
            "a stale pong cannot clear newer misses"
        );
        assert!(!hb.note_reply(second + 99), "unknown seq is noise");
        assert!(hb.note_reply(second));
        assert!(!hb.note_reply(second), "replies are one-shot");
    }

    #[test]
    fn death_is_sticky_until_reset() {
        let mut hb = monitor(1);
        let (seq, _) = hb.tick();
        assert_eq!(hb.tick().1, HeartbeatVerdict::Dead);
        assert!(!hb.note_reply(seq), "a late pong must not race failover");
        assert!(hb.is_dead());
        hb.reset();
        assert!(!hb.is_dead());
        let (seq, verdict) = hb.tick();
        assert_eq!(verdict, HeartbeatVerdict::Healthy);
        assert!(hb.note_reply(seq));
    }

    #[test]
    fn zero_max_missed_is_clamped_to_one() {
        let mut hb = monitor(0);
        assert_eq!(hb.tick().1, HeartbeatVerdict::Healthy);
        assert_eq!(hb.tick().1, HeartbeatVerdict::Dead);
    }
}

//! WAN link model: latency + bandwidth + bounded jitter.

use rand::rngs::StdRng;

use menos_sim::{jitter_factor, seeded_rng, Nanos};

/// A simulated duplex network link between one client and the server.
///
/// Transfer time is `latency + bytes / bandwidth`, optionally scaled by
/// a bounded multiplicative jitter drawn from a per-link deterministic
/// RNG stream. Calibrated defaults ([`WanLink::geo_distributed`])
/// reproduce the paper's Table 1 communication times (DESIGN.md §7).
///
/// # Examples
///
/// ```
/// use menos_net::WanLink;
///
/// let mut link = WanLink::geo_distributed(0);
/// // One 13.1 MB OPT activation tensor takes ≈1.7s at 8 MB/s.
/// let t = link.transfer_time(13_100_000);
/// assert!((1.2..2.4).contains(&t.as_secs_f64()));
/// ```
#[derive(Debug)]
pub struct WanLink {
    latency: Nanos,
    bytes_per_sec: f64,
    jitter: f64,
    rng: StdRng,
    bytes_sent: u64,
    messages: u64,
}

impl WanLink {
    /// Creates a link with explicit parameters. `seed` derives the
    /// jitter stream; links with different seeds jitter independently.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not positive or jitter is not in
    /// `[0, 1)`.
    pub fn new(latency: Nanos, bytes_per_sec: f64, jitter: f64, seed: u64) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        WanLink {
            latency,
            bytes_per_sec,
            jitter,
            rng: seeded_rng(seed, "wan-link"),
            bytes_sent: 0,
            messages: 0,
        }
    }

    /// The paper's geo-distributed Internet path (Toronto ↔ Vancouver):
    /// 60 ms latency, 8 MB/s effective throughput, ±5% jitter.
    pub fn geo_distributed(seed: u64) -> Self {
        WanLink::new(Nanos::from_millis(60), 8e6, 0.05, seed)
    }

    /// A fast local link for tests that want communication to be
    /// negligible.
    pub fn lan(seed: u64) -> Self {
        WanLink::new(Nanos::from_micros(100), 1e9, 0.0, seed)
    }

    /// Simulated one-way transfer time for a message of `bytes`.
    pub fn transfer_time(&mut self, bytes: u64) -> Nanos {
        self.bytes_sent += bytes;
        self.messages += 1;
        let base = self.latency.as_secs_f64() + bytes as f64 / self.bytes_per_sec;
        Nanos::from_secs_f64(base * jitter_factor(&mut self.rng, self.jitter))
    }

    /// Link propagation latency.
    pub fn latency(&self) -> Nanos {
        self.latency
    }

    /// Configured bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Total bytes and messages sent through this link.
    pub fn stats(&self) -> (u64, u64) {
        (self.bytes_sent, self.messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_formula() {
        let mut link = WanLink::new(Nanos::from_millis(100), 1e6, 0.0, 0);
        // 1 MB at 1 MB/s + 100 ms latency = 1.1 s exactly (no jitter).
        assert_eq!(link.transfer_time(1_000_000), Nanos::from_millis(1100));
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let mut a = WanLink::new(Nanos::ZERO, 1e6, 0.1, 7);
        let mut b = WanLink::new(Nanos::ZERO, 1e6, 0.1, 7);
        for _ in 0..100 {
            let ta = a.transfer_time(1_000_000);
            let tb = b.transfer_time(1_000_000);
            assert_eq!(ta, tb, "same seed, same jitter");
            let secs = ta.as_secs_f64();
            assert!((0.9..=1.1).contains(&secs), "jitter out of bounds: {secs}");
        }
    }

    #[test]
    fn different_seeds_jitter_independently() {
        let mut a = WanLink::new(Nanos::ZERO, 1e6, 0.1, 1);
        let mut b = WanLink::new(Nanos::ZERO, 1e6, 0.1, 2);
        let ta: Vec<Nanos> = (0..8).map(|_| a.transfer_time(1_000_000)).collect();
        let tb: Vec<Nanos> = (0..8).map(|_| b.transfer_time(1_000_000)).collect();
        assert_ne!(ta, tb);
    }

    #[test]
    fn geo_distributed_matches_paper_comm_times() {
        // Paper Table 1: one Llama iteration moves ~4 × 6.3 MB and
        // takes ≈3.1-3.9 s.
        let mut link = WanLink::geo_distributed(0);
        let per_iter: f64 = (0..4)
            .map(|_| link.transfer_time(6_300_000).as_secs_f64())
            .sum();
        assert!((2.8..4.2).contains(&per_iter), "Llama comm {per_iter}s");

        // OPT: 4 × ~12.8 MB ≈ 6.4-7.1 s.
        let mut link = WanLink::geo_distributed(1);
        let per_iter: f64 = (0..4)
            .map(|_| link.transfer_time(12_800_000).as_secs_f64())
            .sum();
        assert!((5.8..7.6).contains(&per_iter), "OPT comm {per_iter}s");
    }

    #[test]
    fn stats_accumulate() {
        let mut link = WanLink::lan(0);
        link.transfer_time(10);
        link.transfer_time(20);
        assert_eq!(link.stats(), (30, 2));
        assert!(link.bandwidth() > 1e8);
        assert!(link.latency() < Nanos::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        WanLink::new(Nanos::ZERO, 0.0, 0.0, 0);
    }
}

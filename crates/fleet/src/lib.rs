//! # menos-fleet — whole-server failover for split fine-tuning
//!
//! One Menos server can lose a *connection* and recover (v1.1
//! `Resume`), shed load (v1.3 `Busy`), even be SIGKILLed and restarted
//! from its durable snapshot. This crate survives the case where the
//! process never comes back: a [`FleetCoordinator`] supervises N
//! backend servers, places every session at `Connect` time with a
//! v1.4 `Redirect`, detects a dead backend by missed heartbeats
//! ([`menos_net::HeartbeatMonitor`]), and re-homes the dead server's
//! sessions onto survivors by replaying its last durable snapshot
//! through the `ImportSession` admission path (PROTOCOL.md §9).
//!
//! The coordinator is a *control-plane only* component: it answers
//! `Connect`/`Resume` with `Redirect` (or `Busy`) and never proxies a
//! tensor byte — training traffic always flows client ↔ backend
//! directly, so the paper's bandwidth story is untouched. Clients
//! chase redirects with
//! [`drive_client_routed`](menos_split::drive_client_routed): a
//! placement costs no retry budget, and a mid-run backend death walks
//! the client back to the coordinator for re-placement once migration
//! completes.
//!
//! Correctness bar (the house standard): a fleet run that loses a
//! whole server mid-training must produce loss curves and final
//! adapter weights **bit-identical** to an undisturbed run — migration
//! moves the exact optimizer moments, residuals, and cached replies,
//! and the `Resume` reconciliation does the rest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use menos_core::{encode_session_record, ServerState};
use menos_net::{HeartbeatMonitor, HeartbeatVerdict};
use menos_split::{
    ClientId, ClientMessage, MessageHandler, ProtocolError, ServerMessage, SnapshotPolicy,
    TcpSplitServer, TcpTransport, Transport,
};

/// The client id heartbeat probes travel under. Probes never bind a
/// session (PROTOCOL.md §9.1), so the id only has to be recognizable
/// in logs — it is deliberately outside any realistic client range.
pub const PROBE_CLIENT: ClientId = ClientId(u64::MAX);

/// One supervised backend server.
#[derive(Debug, Clone)]
pub struct BackendSpec {
    /// Dialable address of the backend's split-protocol listener.
    pub addr: String,
    /// Directory holding the backend's durable `server.snap` — the
    /// source of truth for migration when the backend dies.
    pub snapshot_dir: PathBuf,
}

/// How the coordinator chooses a backend for a new (or migrated)
/// session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Rotate through the alive, non-full backends in index order.
    RoundRobin,
    /// Send each session to the alive backend with the fewest
    /// coordinator-assigned sessions (ties broken by lowest index) —
    /// the Algorithm-2-flavoured choice: the emptiest pool has the
    /// most headroom for the session's reservation.
    MemoryAware,
}

/// Tuning knobs for a fleet.
#[derive(Debug, Clone, Copy)]
pub struct FleetOptions {
    /// Placement policy for `Connect` and migration targets.
    pub policy: PlacementPolicy,
    /// Gap between heartbeat rounds; with [`FleetOptions::max_missed`]
    /// it bounds detection latency at `interval × max_missed`.
    pub heartbeat_interval: Duration,
    /// Consecutive unanswered probes before a backend is ruled dead.
    pub max_missed: u32,
    /// Sessions the coordinator will assign to one backend. Should
    /// not exceed the backends' own session capacity — the backend
    /// still enforces its admission gates regardless.
    pub capacity_per_server: usize,
    /// Per-probe I/O deadline (connect errors count as misses too).
    pub probe_timeout: Duration,
    /// `retry_after_ms` hint carried in `Redirect` replies. Zero is
    /// honest for a placement: the target is ready now.
    pub redirect_retry_after_ms: u64,
    /// `retry_after_ms` hint carried in `Busy` replies (migration
    /// window, or every backend full).
    pub busy_retry_after_ms: u64,
    /// Connections the coordinator's accept loop serves before
    /// exiting — a test/demo bound, deliberately enormous by default.
    pub accept_limit: usize,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            policy: PlacementPolicy::RoundRobin,
            heartbeat_interval: Duration::from_millis(50),
            max_missed: 3,
            capacity_per_server: 64,
            probe_timeout: Duration::from_millis(250),
            redirect_retry_after_ms: 0,
            busy_retry_after_ms: 25,
            accept_limit: 1_000_000,
        }
    }
}

/// Per-backend counters (satellite observability for the failover
/// soak: each must be nonzero where the scenario demands it).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Probes this backend failed to answer (lifetime total).
    pub heartbeats_missed: u64,
    /// Times this backend was ruled dead (at most 1 per run — the
    /// coordinator never re-admits a dead backend by itself).
    pub failovers: u64,
    /// Sessions migrated **off** this backend when it died.
    pub sessions_migrated: u64,
    /// Placements steered **to** this backend via `Redirect`.
    pub redirects_sent: u64,
}

/// Fleet-wide counters plus the per-backend breakdown.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Unanswered probes across all backends.
    pub heartbeats_missed: u64,
    /// Backends ruled dead.
    pub failovers: u64,
    /// Sessions successfully re-homed onto survivors.
    pub sessions_migrated: u64,
    /// Sessions that could not be re-homed (no survivor had room, or
    /// every import attempt failed) — their owners see `Busy`.
    pub migrations_failed: u64,
    /// `Redirect` replies sent (placements and resume steers).
    pub redirects_sent: u64,
    /// `Busy` replies sent (migration window or a full fleet).
    pub busy_turnaways: u64,
    /// Per-backend breakdown, indexed like the backend list.
    pub per_server: Vec<ServerStats>,
}

/// Mutable coordinator state, everything behind one lock: placement
/// is a strict serialization point so two `Connect`s can never both
/// land in the last free slot.
#[derive(Debug)]
struct FleetState {
    alive: Vec<bool>,
    /// Session home: client → backend index. Authoritative for
    /// capacity accounting — the coordinator counts what it assigned,
    /// not what a stale pong reported.
    placements: HashMap<ClientId, usize>,
    /// Failovers currently re-homing sessions. While nonzero, a
    /// `Resume` whose home is dead answers `Busy` instead of a
    /// terminal error — the state is in flight, not lost.
    migrating: u32,
    rr_next: usize,
    stats: FleetStats,
}

struct Shared {
    backends: Vec<BackendSpec>,
    options: FleetOptions,
    state: Mutex<FleetState>,
    shutdown: AtomicBool,
}

impl Shared {
    fn new(backends: Vec<BackendSpec>, options: FleetOptions) -> Self {
        let n = backends.len();
        Shared {
            backends,
            options,
            state: Mutex::new(FleetState {
                alive: vec![true; n],
                placements: HashMap::new(),
                migrating: 0,
                rr_next: 0,
                stats: FleetStats {
                    per_server: vec![ServerStats::default(); n],
                    ..FleetStats::default()
                },
            }),
            shutdown: AtomicBool::new(false),
        }
    }

    fn lock(&self) -> MutexGuard<'_, FleetState> {
        self.state.lock().expect("fleet state lock")
    }

    fn assigned(st: &FleetState, backend: usize) -> usize {
        st.placements.values().filter(|&&b| b == backend).count()
    }

    /// Picks a backend for one session under the policy, or `None`
    /// when every alive backend is at capacity.
    fn pick(&self, st: &mut FleetState) -> Option<usize> {
        let n = self.backends.len();
        let fits = |st: &FleetState, b: usize| {
            st.alive[b] && Self::assigned(st, b) < self.options.capacity_per_server
        };
        match self.options.policy {
            PlacementPolicy::RoundRobin => {
                for k in 0..n {
                    let b = (st.rr_next + k) % n;
                    if fits(st, b) {
                        st.rr_next = (b + 1) % n;
                        return Some(b);
                    }
                }
                None
            }
            PlacementPolicy::MemoryAware => (0..n)
                .filter(|&b| fits(st, b))
                .min_by_key(|&b| (Self::assigned(st, b), b)),
        }
    }

    fn redirect(&self, st: &mut FleetState, client: ClientId, backend: usize) -> ServerMessage {
        st.stats.redirects_sent += 1;
        st.stats.per_server[backend].redirects_sent += 1;
        ServerMessage::Redirect {
            client,
            addr: self.backends[backend].addr.clone(),
            retry_after_ms: self.options.redirect_retry_after_ms,
        }
    }

    fn busy(&self, st: &mut FleetState, client: ClientId) -> ServerMessage {
        st.stats.busy_turnaways += 1;
        ServerMessage::Busy {
            client,
            retry_after_ms: self.options.busy_retry_after_ms,
        }
    }

    /// Answers a `Connect`: place (or re-announce an existing live
    /// placement — placement is idempotent) or shed.
    fn place_connect(&self, client: ClientId) -> ServerMessage {
        let mut st = self.lock();
        if let Some(&home) = st.placements.get(&client) {
            if st.alive[home] {
                return self.redirect(&mut st, client, home);
            }
        }
        match self.pick(&mut st) {
            Some(b) => {
                st.placements.insert(client, b);
                self.redirect(&mut st, client, b)
            }
            None => self.busy(&mut st, client),
        }
    }

    /// Answers a `Resume`: steer home, or hold the client off with
    /// `Busy` while its home's death is still being migrated.
    fn place_resume(&self, client: ClientId) -> ServerMessage {
        let mut st = self.lock();
        match st.placements.get(&client).copied() {
            Some(home) if st.alive[home] => self.redirect(&mut st, client, home),
            // Home is dead: if migration is in flight the session will
            // re-appear on a survivor shortly; if migration already
            // failed, Busy is still the honest answer — state may yet
            // free up. Either way the client's budget is not charged.
            Some(_) => self.busy(&mut st, client),
            // Unknown session mid-migration: it may be this failover's
            // not-yet-imported tail.
            None if st.migrating > 0 => self.busy(&mut st, client),
            // Unknown session, quiet fleet: steer it like a fresh
            // placement. The backend answers the resume truthfully
            // (an `Evicted(IdleExpired)` notice), which beats a hang.
            None => match self.pick(&mut st) {
                Some(b) => {
                    st.placements.insert(client, b);
                    self.redirect(&mut st, client, b)
                }
                None => self.busy(&mut st, client),
            },
        }
    }

    fn pong(&self, client: ClientId, seq: u64) -> ServerMessage {
        let st = self.lock();
        let placed = st.placements.len() as u64;
        let cap = (self.backends.len() * self.options.capacity_per_server).max(1) as u64;
        ServerMessage::Pong {
            client,
            seq,
            live_sessions: placed,
            utilization_pct: (placed * 100) / cap,
        }
    }

    fn note_missed(&self, backend: usize) {
        let mut st = self.lock();
        st.stats.heartbeats_missed += 1;
        st.stats.per_server[backend].heartbeats_missed += 1;
    }

    fn is_alive(&self, backend: usize) -> bool {
        self.lock().alive[backend]
    }

    /// Re-homes every session of a dead backend onto survivors: read
    /// its last durable snapshot, replay each session record through a
    /// survivor's `ImportSession` gate, and repoint the placement map.
    /// Clients land via their normal `Resume` — by the time their
    /// redirect budget walks them back here, the map points at the new
    /// home.
    fn failover(&self, dead: usize) {
        {
            let mut st = self.lock();
            if !st.alive[dead] {
                return;
            }
            st.alive[dead] = false;
            st.migrating += 1;
            st.stats.failovers += 1;
            st.stats.per_server[dead].failovers += 1;
        }
        // Snapshot reads race nothing: the writer is dead, and the
        // atomic-rename protocol means any file present is complete.
        // No file (a backend that died before its first admission)
        // means no sessions to move.
        let decoded = SnapshotPolicy::read(&self.backends[dead].snapshot_dir)
            .and_then(|bytes| ServerState::from_bytes(&bytes).ok());
        let (seed, sessions) = match decoded {
            Some(state) => (state.seed, state.sessions),
            None => (0, Vec::new()),
        };
        for rec in sessions {
            let client = rec.client;
            let blob = bytes::Bytes::from(encode_session_record(seed, &rec));
            let mut migrated = false;
            // A target can die mid-migration; its own monitor will
            // rule on it, so a failed import just tries the next pick
            // — bounded by the fleet size.
            for _attempt in 0..self.backends.len() {
                let Some(target) = ({
                    let mut st = self.lock();
                    self.pick(&mut st)
                }) else {
                    break;
                };
                if import_session(&self.backends[target].addr, client, blob.clone()) {
                    let mut st = self.lock();
                    st.placements.insert(client, target);
                    st.stats.sessions_migrated += 1;
                    st.stats.per_server[dead].sessions_migrated += 1;
                    migrated = true;
                    break;
                }
            }
            if !migrated {
                self.lock().stats.migrations_failed += 1;
            }
        }
        self.lock().migrating -= 1;
    }
}

/// Sends one migration blob through a backend's `ImportSession` gate
/// (PROTOCOL.md §3.9); true only if the backend acked with `Imported`.
fn import_session(addr: &str, client: ClientId, blob: bytes::Bytes) -> bool {
    let Ok(mut t) = TcpTransport::connect(addr) else {
        return false;
    };
    if t.set_deadline(Some(Duration::from_secs(10))).is_err() {
        return false;
    }
    if t.send(&ClientMessage::ImportSession { client, blob })
        .is_err()
    {
        return false;
    }
    matches!(t.recv(), Ok(ServerMessage::Imported { .. }))
}

/// One heartbeat probe: dial, `Ping`, await the `Pong`. Any failure —
/// refused connect, deadline, wrong reply — reads as silence.
fn probe(addr: &str, seq: u64, timeout: Duration) -> Option<(u64, u64, u64)> {
    let mut t = TcpTransport::connect(addr).ok()?;
    t.set_deadline(Some(timeout)).ok()?;
    t.send(&ClientMessage::Ping {
        client: PROBE_CLIENT,
        seq,
    })
    .ok()?;
    match t.recv().ok()? {
        ServerMessage::Pong {
            seq,
            live_sessions,
            utilization_pct,
            ..
        } => Some((seq, live_sessions, utilization_pct)),
        _ => None,
    }
}

fn health_loop(shared: Arc<Shared>) {
    let mut monitors: Vec<HeartbeatMonitor> = shared
        .backends
        .iter()
        .map(|_| {
            HeartbeatMonitor::new(shared.options.heartbeat_interval, shared.options.max_missed)
        })
        .collect();
    while !shared.shutdown.load(Ordering::Relaxed) {
        for (i, monitor) in monitors.iter_mut().enumerate() {
            if !shared.is_alive(i) {
                continue;
            }
            let (seq, verdict) = monitor.tick();
            match verdict {
                HeartbeatVerdict::Healthy => {}
                HeartbeatVerdict::Missed => shared.note_missed(i),
                HeartbeatVerdict::Dead => {
                    shared.note_missed(i);
                    shared.failover(i);
                    continue;
                }
            }
            if let Some((got, live, util)) =
                probe(&shared.backends[i].addr, seq, shared.options.probe_timeout)
            {
                monitor.note_pong(got, live, util);
            }
        }
        std::thread::sleep(shared.options.heartbeat_interval);
    }
}

/// The coordinator's wire-facing half: a [`MessageHandler`] served by
/// the stock accept loop. Control messages only — a tensor frame here
/// means a client ignored its redirect, and gets a typed error.
struct CoordinatorHandler {
    shared: Arc<Shared>,
}

impl MessageHandler for CoordinatorHandler {
    fn handle(&mut self, msg: ClientMessage) -> Result<Option<ServerMessage>, ProtocolError> {
        match msg {
            ClientMessage::Connect { client, .. } => Ok(Some(self.shared.place_connect(client))),
            ClientMessage::Resume { client, .. } => Ok(Some(self.shared.place_resume(client))),
            ClientMessage::Ping { client, seq } => Ok(Some(self.shared.pong(client, seq))),
            ClientMessage::Disconnect { .. } => Ok(None),
            ClientMessage::ImportSession { .. } => Err(ProtocolError::Unexpected(
                "the coordinator issues imports, it does not accept them".into(),
            )),
            ClientMessage::Activations { .. } | ClientMessage::Gradients { .. } => {
                Err(ProtocolError::Unexpected(
                    "coordinator is control-plane only: dial your redirect target".into(),
                ))
            }
        }
    }

    /// Every redirected client hangs up on us by design — a dropped
    /// coordinator connection is the success path, not a lost session.
    fn connection_lost(&mut self, _client: ClientId) {}
}

/// Supervises N backends: placement at `Connect`, heartbeat failure
/// detection, snapshot-replay migration at failover. See the crate
/// docs for the protocol walk-through.
pub struct FleetCoordinator {
    shared: Arc<Shared>,
    server: Option<TcpSplitServer>,
    health: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl FleetCoordinator {
    /// Binds the coordinator's control listener (port 0 for ephemeral)
    /// and starts the health-check thread.
    ///
    /// # Errors
    ///
    /// Fails if `backends` is empty or the address cannot be bound.
    pub fn spawn(
        addr: impl ToSocketAddrs,
        backends: Vec<BackendSpec>,
        options: FleetOptions,
    ) -> Result<FleetCoordinator, ProtocolError> {
        if backends.is_empty() {
            return Err(ProtocolError::Rejected(
                "a fleet needs at least one backend".into(),
            ));
        }
        let shared = Arc::new(Shared::new(backends, options));
        let handler = Arc::new(Mutex::new(CoordinatorHandler {
            shared: shared.clone(),
        }));
        let server = TcpSplitServer::spawn(addr, handler, options.accept_limit)?;
        let bound = server.addr();
        let health = {
            let shared = shared.clone();
            std::thread::spawn(move || health_loop(shared))
        };
        Ok(FleetCoordinator {
            shared,
            server: Some(server),
            health: Some(health),
            addr: bound,
        })
    }

    /// The coordinator's bound control address — what clients dial
    /// first.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the fleet counters.
    pub fn stats(&self) -> FleetStats {
        self.shared.lock().stats.clone()
    }

    /// Current home of a session, if the coordinator has placed it.
    pub fn placement_of(&self, client: ClientId) -> Option<usize> {
        self.shared.lock().placements.get(&client).copied()
    }

    /// Which backends the coordinator currently believes are alive.
    pub fn alive(&self) -> Vec<bool> {
        self.shared.lock().alive.clone()
    }

    /// Stops the health thread and the accept loop, returning the
    /// final counters.
    pub fn shutdown(mut self) -> FleetStats {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
        if let Some(server) = self.server.take() {
            // The accept loop only re-checks its flag after accept()
            // returns; one throwaway dial unblocks it.
            drop(server); // raises the accept loop's shutdown flag
            let _ = std::net::TcpStream::connect(self.addr);
        }
        self.stats()
    }
}

impl Drop for FleetCoordinator {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
        if self.server.take().is_some() {
            let _ = std::net::TcpStream::connect(self.addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_shared(n: usize, options: FleetOptions) -> Shared {
        let backends = (0..n)
            .map(|i| BackendSpec {
                addr: format!("backend-{i}:4400"),
                snapshot_dir: PathBuf::from(format!("/nonexistent/{i}")),
            })
            .collect();
        Shared::new(backends, options)
    }

    fn addr_of(msg: &ServerMessage) -> &str {
        match msg {
            ServerMessage::Redirect { addr, .. } => addr,
            other => panic!("expected Redirect, got {other:?}"),
        }
    }

    #[test]
    fn round_robin_rotates_and_sheds_at_capacity() {
        let shared = fake_shared(
            3,
            FleetOptions {
                capacity_per_server: 2,
                ..FleetOptions::default()
            },
        );
        let mut homes = Vec::new();
        for k in 0..6 {
            homes.push(addr_of(&shared.place_connect(ClientId(k))).to_string());
        }
        assert_eq!(
            homes,
            [
                "backend-0:4400",
                "backend-1:4400",
                "backend-2:4400",
                "backend-0:4400",
                "backend-1:4400",
                "backend-2:4400"
            ]
        );
        // Slot 7: every backend is at its 2-session cap.
        let reply = shared.place_connect(ClientId(6));
        assert!(
            matches!(reply, ServerMessage::Busy { retry_after_ms, .. } if retry_after_ms == 25),
            "{reply:?}"
        );
        let st = shared.lock();
        assert_eq!(st.stats.redirects_sent, 6);
        assert_eq!(st.stats.busy_turnaways, 1);
        assert_eq!(st.stats.per_server[0].redirects_sent, 2);
    }

    #[test]
    fn placement_is_idempotent_for_a_known_client() {
        let shared = fake_shared(2, FleetOptions::default());
        let first = addr_of(&shared.place_connect(ClientId(9))).to_string();
        // A reconnecting client (fresh Connect after losing its
        // budget) must land on the same backend, not a new slot.
        let again = addr_of(&shared.place_connect(ClientId(9))).to_string();
        assert_eq!(first, again);
        assert_eq!(shared.lock().placements.len(), 1);
    }

    #[test]
    fn memory_aware_fills_the_least_loaded_backend() {
        let shared = fake_shared(
            3,
            FleetOptions {
                policy: PlacementPolicy::MemoryAware,
                ..FleetOptions::default()
            },
        );
        {
            let mut st = shared.lock();
            st.placements.insert(ClientId(100), 0);
            st.placements.insert(ClientId(101), 0);
            st.placements.insert(ClientId(102), 2);
        }
        assert_eq!(
            addr_of(&shared.place_connect(ClientId(0))),
            "backend-1:4400"
        );
        // Now 1 and 2 are tied at one session each: lowest index wins.
        assert_eq!(
            addr_of(&shared.place_connect(ClientId(1))),
            "backend-1:4400"
        );
        assert_eq!(
            addr_of(&shared.place_connect(ClientId(2))),
            "backend-2:4400"
        );
    }

    #[test]
    fn resume_follows_the_placement_map_through_a_failover() {
        let shared = fake_shared(2, FleetOptions::default());
        let home = addr_of(&shared.place_connect(ClientId(3))).to_string();
        assert_eq!(home, "backend-0:4400");
        assert_eq!(addr_of(&shared.place_resume(ClientId(3))), home);

        // Backend 0 dies; while its sessions are in flight, the
        // client is parked with Busy — its budget untouched.
        {
            let mut st = shared.lock();
            st.alive[0] = false;
            st.migrating = 1;
        }
        assert!(matches!(
            shared.place_resume(ClientId(3)),
            ServerMessage::Busy { .. }
        ));
        // Migration repoints the map; the next resume steers home.
        {
            let mut st = shared.lock();
            st.placements.insert(ClientId(3), 1);
            st.migrating = 0;
        }
        assert_eq!(addr_of(&shared.place_resume(ClientId(3))), "backend-1:4400");
    }

    #[test]
    fn unknown_resume_waits_out_migration_then_gets_a_fresh_steer() {
        let shared = fake_shared(2, FleetOptions::default());
        shared.lock().migrating = 1;
        assert!(matches!(
            shared.place_resume(ClientId(7)),
            ServerMessage::Busy { .. }
        ));
        shared.lock().migrating = 0;
        // Quiet fleet: an unknown resume is steered so the backend can
        // answer it truthfully instead of the client hanging.
        assert!(matches!(
            shared.place_resume(ClientId(7)),
            ServerMessage::Redirect { .. }
        ));
    }

    #[test]
    fn dead_backends_are_never_picked() {
        let shared = fake_shared(3, FleetOptions::default());
        shared.lock().alive[0] = false;
        shared.lock().alive[2] = false;
        for k in 0..4 {
            assert_eq!(
                addr_of(&shared.place_connect(ClientId(k))),
                "backend-1:4400"
            );
        }
        shared.lock().alive[1] = false;
        assert!(matches!(
            shared.place_connect(ClientId(99)),
            ServerMessage::Busy { .. }
        ));
    }

    #[test]
    fn the_handler_rejects_tensor_traffic_with_a_typed_error() {
        let shared = Arc::new(fake_shared(1, FleetOptions::default()));
        let mut handler = CoordinatorHandler { shared };
        let err = handler
            .handle(ClientMessage::Activations {
                client: ClientId(0),
                frame: bytes::Bytes::from_static(b"tensor"),
            })
            .expect_err("tensors must not be proxied");
        assert!(matches!(err, ProtocolError::Unexpected(_)), "{err}");
        let reply = handler
            .handle(ClientMessage::Ping {
                client: ClientId(0),
                seq: 41,
            })
            .expect("pings are answered")
            .expect("with a pong");
        assert!(
            matches!(reply, ServerMessage::Pong { seq: 41, .. }),
            "{reply:?}"
        );
    }

    #[test]
    fn failover_without_a_snapshot_still_marks_the_backend_dead() {
        let shared = fake_shared(2, FleetOptions::default());
        shared.place_connect(ClientId(5));
        shared.failover(0);
        let st = shared.lock();
        assert!(!st.alive[0]);
        assert_eq!(st.stats.failovers, 1);
        assert_eq!(st.stats.per_server[0].failovers, 1);
        assert_eq!(st.migrating, 0, "the migration window always closes");
        assert_eq!(
            st.stats.sessions_migrated, 0,
            "no snapshot, nothing to move"
        );
    }
}

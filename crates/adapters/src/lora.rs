//! LoRA (Low-Rank Adaptation), the paper's primary fine-tuning method.

use rand::Rng;

use menos_models::{LinearAdapter, LoraSpec};
use menos_tensor::{
    load_checkpoint, save_checkpoint, CheckpointError, ParamStore, SectionReader, SectionWriter,
    Tensor,
};

/// A LoRA adapter for one linear projection: the base output is
/// adjusted by `(x A) B · (α / r)` where `A ∈ R^{in×r}` is
/// Gaussian-initialized and `B ∈ R^{r×out}` starts at zero, so a fresh
/// adapter is an exact no-op.
///
/// # Examples
///
/// ```
/// use menos_adapters::LoraAdapter;
/// use menos_models::{LinearAdapter, LoraSpec};
/// use menos_tensor::Tensor;
///
/// let mut rng = menos_sim::seeded_rng(1, "doc");
/// let lora = LoraAdapter::new(&mut rng, 16, 16, &LoraSpec::paper());
/// let x = Tensor::ones([1, 16]);
/// let base = Tensor::zeros([1, 16]);
/// // Zero-initialized B makes the adapter transparent at first.
/// assert_eq!(lora.adjust(&x, &base).to_vec(), vec![0.0; 16]);
/// ```
#[derive(Debug)]
pub struct LoraAdapter {
    a: Tensor,
    b: Tensor,
    scale: f32,
}

impl LoraAdapter {
    /// Creates a LoRA adapter for a `[in_dim, out_dim]` projection.
    ///
    /// # Panics
    ///
    /// Panics if the rank is zero or does not fit the projection.
    pub fn new<R: Rng>(rng: &mut R, in_dim: usize, out_dim: usize, spec: &LoraSpec) -> Self {
        assert!(spec.rank > 0, "LoRA rank must be positive");
        assert!(
            spec.rank <= in_dim.min(out_dim),
            "LoRA rank {} exceeds projection dims {in_dim}x{out_dim}",
            spec.rank
        );
        // Kaiming-style init for A (as in the LoRA paper), zeros for B.
        let std = 1.0 / (in_dim as f32).sqrt();
        LoraAdapter {
            a: Tensor::randn(rng, [in_dim, spec.rank], std).trainable(),
            b: Tensor::zeros([spec.rank, out_dim]).trainable(),
            scale: spec.scale(),
        }
    }

    /// The low-rank factors `(A, B)`.
    pub fn factors(&self) -> (&Tensor, &Tensor) {
        (&self.a, &self.b)
    }

    /// Rank of this adapter.
    pub fn rank(&self) -> usize {
        self.a.shape().dim(1)
    }

    /// Trainable parameter bytes (A and B).
    pub fn param_bytes(&self) -> u64 {
        self.a.size_bytes() + self.b.size_bytes()
    }

    /// Serializes the adapter — factors and scale — as a tagged
    /// section container for durable snapshots.
    #[must_use]
    pub fn to_state(&self) -> Vec<u8> {
        let mut meta = Vec::new();
        meta.extend(self.scale.to_le_bytes());
        let mut params = ParamStore::new();
        params.insert("lora.a", self.a.clone());
        params.insert("lora.b", self.b.clone());
        let mut w = SectionWriter::new();
        w.section(LORA_TAG_META, meta);
        w.section(LORA_TAG_PARAMS, save_checkpoint(&params));
        w.finish()
    }

    /// Reconstructs an adapter from [`to_state`](Self::to_state)
    /// bytes, bit-identical to the snapshotted one.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on corrupt bytes, missing factors, or
    /// factor shapes that do not form a low-rank pair.
    pub fn from_state(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let r = SectionReader::parse(bytes)?;
        let meta = r.require(LORA_TAG_META)?;
        if meta.len() != 4 {
            return Err(CheckpointError::Corrupt(format!(
                "lora meta of {} bytes",
                meta.len()
            )));
        }
        let scale = f32::from_le_bytes(meta.try_into().expect("4"));
        if !scale.is_finite() {
            return Err(CheckpointError::Corrupt(format!("lora scale {scale}")));
        }
        let params = load_checkpoint(r.require(LORA_TAG_PARAMS)?)?;
        let a = params
            .get("lora.a")
            .ok_or_else(|| CheckpointError::MissingParam("lora.a".into()))?
            .clone();
        let b = params
            .get("lora.b")
            .ok_or_else(|| CheckpointError::MissingParam("lora.b".into()))?
            .clone();
        if a.rank() != 2 || b.rank() != 2 || a.shape().dim(1) != b.shape().dim(0) {
            return Err(CheckpointError::Corrupt(format!(
                "lora factors {:?} x {:?} are not a low-rank pair",
                a.dims(),
                b.dims()
            )));
        }
        if a.shape().dim(1) == 0 {
            return Err(CheckpointError::Corrupt("lora rank 0".into()));
        }
        if !(a.requires_grad() && b.requires_grad()) {
            return Err(CheckpointError::Corrupt(
                "lora factors must be trainable".into(),
            ));
        }
        Ok(LoraAdapter { a, b, scale })
    }
}

const LORA_TAG_META: u32 = 1;
const LORA_TAG_PARAMS: u32 = 2;

impl LinearAdapter for LoraAdapter {
    fn adjust(&self, x: &Tensor, base: &Tensor) -> Tensor {
        let delta = x.matmul(&self.a).matmul(&self.b).mul_scalar(self.scale);
        base.add(&delta)
    }

    fn trainable_params(&self) -> Vec<(String, Tensor)> {
        vec![
            ("lora.a".to_string(), self.a.clone()),
            ("lora.b".to_string(), self.b.clone()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menos_sim::seeded_rng;

    #[test]
    fn fresh_adapter_is_identity() {
        let mut rng = seeded_rng(1, "lora");
        let lora = LoraAdapter::new(&mut rng, 8, 8, &LoraSpec::paper());
        let x = Tensor::randn(&mut rng, [2, 8], 1.0);
        let base = Tensor::randn(&mut rng, [2, 8], 1.0);
        assert!(lora.adjust(&x, &base).max_abs_diff(&base) < 1e-7);
    }

    #[test]
    fn nonzero_b_changes_output() {
        let mut rng = seeded_rng(2, "lora");
        let lora = LoraAdapter::new(&mut rng, 8, 8, &LoraSpec::paper());
        lora.factors()
            .1
            .storage()
            .write()
            .iter_mut()
            .for_each(|v| *v = 0.1);
        let x = Tensor::ones([1, 8]);
        let base = Tensor::zeros([1, 8]);
        let y = lora.adjust(&x, &base);
        assert!(y.to_vec().iter().any(|&v| v.abs() > 1e-4));
    }

    #[test]
    fn gradients_flow_to_both_factors() {
        let mut rng = seeded_rng(3, "lora");
        let lora = LoraAdapter::new(&mut rng, 8, 8, &LoraSpec::paper());
        // Push B off zero so A receives a nonzero gradient.
        lora.factors()
            .1
            .storage()
            .write()
            .iter_mut()
            .for_each(|v| *v = 0.05);
        let x = Tensor::randn(&mut rng, [2, 8], 1.0);
        let base = Tensor::zeros([2, 8]);
        let loss = lora.adjust(&x, &base).powi(2).sum_all();
        let grads = loss.backward();
        let (a, b) = lora.factors();
        assert!(grads.get(a).is_some());
        assert!(grads.get(b).is_some());
        assert!(grads.get(a).unwrap().to_vec().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn param_accounting() {
        let mut rng = seeded_rng(4, "lora");
        let spec = LoraSpec {
            rank: 4,
            alpha: 8.0,
            targets_per_block: 2,
        };
        let lora = LoraAdapter::new(&mut rng, 16, 16, &spec);
        assert_eq!(lora.rank(), 4);
        // (16*4 + 4*16) * 4 bytes.
        assert_eq!(lora.param_bytes(), 512);
        assert_eq!(lora.trainable_params().len(), 2);
        assert!(lora
            .trainable_params()
            .iter()
            .all(|(_, t)| t.requires_grad()));
    }

    #[test]
    fn state_round_trips_bit_identically() {
        let mut rng = seeded_rng(6, "lora");
        let lora = LoraAdapter::new(&mut rng, 16, 8, &LoraSpec::paper());
        // Perturb B so the round trip is not trivially zeros.
        lora.factors()
            .1
            .storage()
            .write()
            .iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = i as f32 * 0.125);
        let restored = LoraAdapter::from_state(&lora.to_state()).unwrap();
        let bits = |t: &Tensor| t.to_vec().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(restored.rank(), lora.rank());
        assert_eq!(bits(restored.factors().0), bits(lora.factors().0));
        assert_eq!(bits(restored.factors().1), bits(lora.factors().1));
        let x = Tensor::randn(&mut rng, [2, 16], 1.0);
        let base = Tensor::zeros([2, 8]);
        assert_eq!(
            bits(&restored.adjust(&x, &base)),
            bits(&lora.adjust(&x, &base)),
            "scale must survive the round trip"
        );
    }

    #[test]
    fn state_decode_rejects_corruption_and_bad_factors() {
        let mut rng = seeded_rng(7, "lora");
        let lora = LoraAdapter::new(&mut rng, 8, 8, &LoraSpec::paper());
        let bytes = lora.to_state();
        for cut in 0..bytes.len() {
            assert!(LoraAdapter::from_state(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // A params section whose factors do not compose.
        let mut params = ParamStore::new();
        params.insert("lora.a", Tensor::var_from_vec(vec![0.0; 8], [4, 2]));
        params.insert("lora.b", Tensor::var_from_vec(vec![0.0; 12], [3, 4]));
        let mut w = SectionWriter::new();
        w.section(LORA_TAG_META, 1.0f32.to_le_bytes().to_vec());
        w.section(LORA_TAG_PARAMS, save_checkpoint(&params));
        assert!(matches!(
            LoraAdapter::from_state(&w.finish()),
            Err(CheckpointError::Corrupt(_))
        ));
        // Missing factor.
        let mut params = ParamStore::new();
        params.insert("lora.a", Tensor::var_from_vec(vec![0.0; 8], [4, 2]));
        let mut w = SectionWriter::new();
        w.section(LORA_TAG_META, 1.0f32.to_le_bytes().to_vec());
        w.section(LORA_TAG_PARAMS, save_checkpoint(&params));
        assert!(matches!(
            LoraAdapter::from_state(&w.finish()),
            Err(CheckpointError::MissingParam(name)) if name == "lora.b"
        ));
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn oversized_rank_rejected() {
        let mut rng = seeded_rng(5, "lora");
        LoraAdapter::new(
            &mut rng,
            4,
            4,
            &LoraSpec {
                rank: 8,
                alpha: 16.0,
                targets_per_block: 2,
            },
        );
    }
}

//! LoRA (Low-Rank Adaptation), the paper's primary fine-tuning method.

use rand::Rng;

use menos_models::{LinearAdapter, LoraSpec};
use menos_tensor::Tensor;

/// A LoRA adapter for one linear projection: the base output is
/// adjusted by `(x A) B · (α / r)` where `A ∈ R^{in×r}` is
/// Gaussian-initialized and `B ∈ R^{r×out}` starts at zero, so a fresh
/// adapter is an exact no-op.
///
/// # Examples
///
/// ```
/// use menos_adapters::LoraAdapter;
/// use menos_models::{LinearAdapter, LoraSpec};
/// use menos_tensor::Tensor;
///
/// let mut rng = menos_sim::seeded_rng(1, "doc");
/// let lora = LoraAdapter::new(&mut rng, 16, 16, &LoraSpec::paper());
/// let x = Tensor::ones([1, 16]);
/// let base = Tensor::zeros([1, 16]);
/// // Zero-initialized B makes the adapter transparent at first.
/// assert_eq!(lora.adjust(&x, &base).to_vec(), vec![0.0; 16]);
/// ```
#[derive(Debug)]
pub struct LoraAdapter {
    a: Tensor,
    b: Tensor,
    scale: f32,
}

impl LoraAdapter {
    /// Creates a LoRA adapter for a `[in_dim, out_dim]` projection.
    ///
    /// # Panics
    ///
    /// Panics if the rank is zero or does not fit the projection.
    pub fn new<R: Rng>(rng: &mut R, in_dim: usize, out_dim: usize, spec: &LoraSpec) -> Self {
        assert!(spec.rank > 0, "LoRA rank must be positive");
        assert!(
            spec.rank <= in_dim.min(out_dim),
            "LoRA rank {} exceeds projection dims {in_dim}x{out_dim}",
            spec.rank
        );
        // Kaiming-style init for A (as in the LoRA paper), zeros for B.
        let std = 1.0 / (in_dim as f32).sqrt();
        LoraAdapter {
            a: Tensor::randn(rng, [in_dim, spec.rank], std).trainable(),
            b: Tensor::zeros([spec.rank, out_dim]).trainable(),
            scale: spec.scale(),
        }
    }

    /// The low-rank factors `(A, B)`.
    pub fn factors(&self) -> (&Tensor, &Tensor) {
        (&self.a, &self.b)
    }

    /// Rank of this adapter.
    pub fn rank(&self) -> usize {
        self.a.shape().dim(1)
    }

    /// Trainable parameter bytes (A and B).
    pub fn param_bytes(&self) -> u64 {
        self.a.size_bytes() + self.b.size_bytes()
    }
}

impl LinearAdapter for LoraAdapter {
    fn adjust(&self, x: &Tensor, base: &Tensor) -> Tensor {
        let delta = x.matmul(&self.a).matmul(&self.b).mul_scalar(self.scale);
        base.add(&delta)
    }

    fn trainable_params(&self) -> Vec<(String, Tensor)> {
        vec![
            ("lora.a".to_string(), self.a.clone()),
            ("lora.b".to_string(), self.b.clone()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menos_sim::seeded_rng;

    #[test]
    fn fresh_adapter_is_identity() {
        let mut rng = seeded_rng(1, "lora");
        let lora = LoraAdapter::new(&mut rng, 8, 8, &LoraSpec::paper());
        let x = Tensor::randn(&mut rng, [2, 8], 1.0);
        let base = Tensor::randn(&mut rng, [2, 8], 1.0);
        assert!(lora.adjust(&x, &base).max_abs_diff(&base) < 1e-7);
    }

    #[test]
    fn nonzero_b_changes_output() {
        let mut rng = seeded_rng(2, "lora");
        let lora = LoraAdapter::new(&mut rng, 8, 8, &LoraSpec::paper());
        lora.factors()
            .1
            .storage()
            .write()
            .iter_mut()
            .for_each(|v| *v = 0.1);
        let x = Tensor::ones([1, 8]);
        let base = Tensor::zeros([1, 8]);
        let y = lora.adjust(&x, &base);
        assert!(y.to_vec().iter().any(|&v| v.abs() > 1e-4));
    }

    #[test]
    fn gradients_flow_to_both_factors() {
        let mut rng = seeded_rng(3, "lora");
        let lora = LoraAdapter::new(&mut rng, 8, 8, &LoraSpec::paper());
        // Push B off zero so A receives a nonzero gradient.
        lora.factors()
            .1
            .storage()
            .write()
            .iter_mut()
            .for_each(|v| *v = 0.05);
        let x = Tensor::randn(&mut rng, [2, 8], 1.0);
        let base = Tensor::zeros([2, 8]);
        let loss = lora.adjust(&x, &base).powi(2).sum_all();
        let grads = loss.backward();
        let (a, b) = lora.factors();
        assert!(grads.get(a).is_some());
        assert!(grads.get(b).is_some());
        assert!(grads.get(a).unwrap().to_vec().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn param_accounting() {
        let mut rng = seeded_rng(4, "lora");
        let spec = LoraSpec {
            rank: 4,
            alpha: 8.0,
            targets_per_block: 2,
        };
        let lora = LoraAdapter::new(&mut rng, 16, 16, &spec);
        assert_eq!(lora.rank(), 4);
        // (16*4 + 4*16) * 4 bytes.
        assert_eq!(lora.param_bytes(), 512);
        assert_eq!(lora.trainable_params().len(), 2);
        assert!(lora
            .trainable_params()
            .iter()
            .all(|(_, t)| t.requires_grad()));
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn oversized_rank_rejected() {
        let mut rng = seeded_rng(5, "lora");
        LoraAdapter::new(
            &mut rng,
            4,
            4,
            &LoraSpec {
                rank: 8,
                alpha: 16.0,
                targets_per_block: 2,
            },
        );
    }
}

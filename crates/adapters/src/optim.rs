//! Optimizers over adapter parameters.
//!
//! Only adapter parameters train in adapter-based fine-tuning, so
//! optimizer state (the `O` component of the paper's memory model) is
//! proportional to `A`, not to the base model.

use menos_tensor::{GradStore, Tensor};

/// Shared interface for the optimizers used in the experiments.
pub trait Optimizer: Send {
    /// Applies one update step from `grads` to the managed parameters
    /// (in place; the autograd graph is not touched).
    fn step(&mut self, grads: &GradStore);

    /// The managed parameters.
    fn params(&self) -> &[Tensor];

    /// Bytes of optimizer state (momentum/moment buffers), excluding
    /// the parameters themselves.
    fn state_bytes(&self) -> u64;

    /// Overrides the learning rate (driven by an
    /// [`crate::LrSchedule`] between steps).
    fn set_lr(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer over `params`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or `momentum` is outside
    /// `[0, 1)`.
    pub fn new(params: Vec<Tensor>, lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        let velocity = if momentum > 0.0 {
            params.iter().map(|p| vec![0.0; p.elem_count()]).collect()
        } else {
            Vec::new()
        };
        Sgd {
            params,
            lr,
            momentum,
            velocity,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, grads: &GradStore) {
        for (i, p) in self.params.iter().enumerate() {
            let Some(g) = grads.get(p) else { continue };
            let g = g.to_vec();
            let mut w = p.storage().write();
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                for j in 0..w.len() {
                    v[j] = self.momentum * v[j] + g[j];
                    w[j] -= self.lr * v[j];
                }
            } else {
                for j in 0..w.len() {
                    w[j] -= self.lr * g[j];
                }
            }
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }

    fn state_bytes(&self) -> u64 {
        self.velocity.iter().map(|v| v.len() as u64 * 4).sum()
    }

    fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// Rescales all gradients in `grads` for `params` so their global L2
/// norm does not exceed `max_norm`, returning the pre-clip norm — the
/// standard stabilizer for LLM fine-tuning.
///
/// # Panics
///
/// Panics if `max_norm` is not positive.
///
/// # Examples
///
/// ```
/// use menos_adapters::clip_grad_norm;
/// use menos_tensor::Tensor;
///
/// let w = Tensor::var_from_vec(vec![3.0, 4.0], [2]);
/// let mut grads = (&w * &w).sum_all().backward(); // grad (6, 8), norm 10
/// let norm = clip_grad_norm(&mut grads, &[w.clone()], 1.0);
/// assert!((norm - 10.0).abs() < 1e-5);
/// let g = grads.get(&w).unwrap().to_vec();
/// assert!((g[0] - 0.6).abs() < 1e-5 && (g[1] - 0.8).abs() < 1e-5);
/// ```
pub fn clip_grad_norm(grads: &mut GradStore, params: &[Tensor], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sum_sq = 0.0f64;
    for p in params {
        if let Some(g) = grads.get(p) {
            for v in g.storage().read().iter() {
                sum_sq += f64::from(*v) * f64::from(*v);
            }
        }
    }
    let norm = (sum_sq as f32).sqrt();
    if norm > max_norm {
        grads.scale(max_norm / norm);
    }
    norm
}

/// Adam with bias correction — the paper's fine-tuning optimizer.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Adam::with_betas(params, lr, 0.9, 0.999, 1e-8)
    }

    /// Creates an Adam optimizer with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or a beta is outside `[0, 1)`.
    pub fn with_betas(params: Vec<Tensor>, lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        let m = params.iter().map(|p| vec![0.0; p.elem_count()]).collect();
        let v = params.iter().map(|p| vec![0.0; p.elem_count()]).collect();
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m,
            v,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, grads: &GradStore) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let Some(g) = grads.get(p) else { continue };
            let g = g.to_vec();
            let mut w = p.storage().write();
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for j in 0..w.len() {
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g[j];
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g[j] * g[j];
                let mhat = m[j] / bc1;
                let vhat = v[j] / bc2;
                w[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }

    fn state_bytes(&self) -> u64 {
        // Two moment buffers, 4 bytes per element each.
        self.m
            .iter()
            .zip(self.v.iter())
            .map(|(m, v)| (m.len() + v.len()) as u64 * 4)
            .sum()
    }

    fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes `(w - 3)^2` and returns the final weight.
    fn optimize(mut opt: impl Optimizer, steps: usize) -> f32 {
        let w = opt.params()[0].clone();
        for _ in 0..steps {
            let loss = (&w.add_scalar(-3.0) * &w.add_scalar(-3.0)).sum_all();
            let grads = loss.backward();
            opt.step(&grads);
        }
        w.to_vec()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = Tensor::var_from_vec(vec![0.0], [1]);
        let end = optimize(Sgd::new(vec![w], 0.1, 0.0), 50);
        assert!((end - 3.0).abs() < 1e-3, "w = {end}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = Tensor::var_from_vec(vec![0.0], [1]);
        let end = optimize(Sgd::new(vec![w], 0.05, 0.9), 100);
        assert!((end - 3.0).abs() < 0.1, "w = {end}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = Tensor::var_from_vec(vec![0.0], [1]);
        let end = optimize(Adam::new(vec![w], 0.3), 100);
        assert!((end - 3.0).abs() < 0.05, "w = {end}");
    }

    #[test]
    fn optimizer_ignores_params_without_grads() {
        let w = Tensor::var_from_vec(vec![1.0], [1]);
        let unused = Tensor::var_from_vec(vec![5.0], [1]);
        let mut opt = Sgd::new(vec![w.clone(), unused.clone()], 0.1, 0.0);
        let loss = (&w * &w).sum_all();
        opt.step(&loss.backward());
        assert_eq!(unused.to_vec(), vec![5.0]);
        assert!(w.to_vec()[0] < 1.0);
    }

    #[test]
    fn state_bytes_accounting() {
        let params = vec![Tensor::var_from_vec(vec![0.0; 10], [10])];
        assert_eq!(Sgd::new(params.clone(), 0.1, 0.0).state_bytes(), 0);
        assert_eq!(Sgd::new(params.clone(), 0.1, 0.5).state_bytes(), 40);
        // Adam: m and v, 2 * 10 * 4 bytes.
        assert_eq!(Adam::new(params, 0.1).state_bytes(), 80);
    }

    #[test]
    fn adam_counts_steps() {
        let w = Tensor::var_from_vec(vec![0.0], [1]);
        let mut opt = Adam::new(vec![w.clone()], 0.1);
        assert_eq!(opt.steps(), 0);
        let loss = (&w * &w).sum_all();
        opt.step(&loss.backward());
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn updates_propagate_through_shared_storage() {
        // The optimizer updates the storage in place, so every aliased
        // view of the parameter observes the new value — required for
        // adapters bound into a model structure.
        let w = Tensor::var_from_vec(vec![1.0], [1]);
        let alias = w.detach();
        let mut opt = Sgd::new(vec![w.clone()], 0.5, 0.0);
        let loss = (&w * &w).sum_all();
        opt.step(&loss.backward());
        assert_eq!(alias.to_vec(), w.to_vec());
        assert!(alias.to_vec()[0] < 1.0);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn bad_lr_rejected() {
        Sgd::new(vec![], 0.0, 0.0);
    }

    #[test]
    fn clip_grad_norm_caps_and_reports() {
        let w = Tensor::var_from_vec(vec![3.0, 4.0], [2]);
        let mut grads = (&w * &w).sum_all().backward(); // (6, 8), norm 10
        let norm = clip_grad_norm(&mut grads, &[w.clone()], 5.0);
        assert!((norm - 10.0).abs() < 1e-4);
        let g = grads.get(&w).unwrap().to_vec();
        let clipped = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((clipped - 5.0).abs() < 1e-4);
        // Already-small grads are untouched.
        let mut grads = (&w * &w).sum_all().backward();
        clip_grad_norm(&mut grads, &[w.clone()], 100.0);
        assert_eq!(grads.get(&w).unwrap().to_vec(), vec![6.0, 8.0]);
    }

    #[test]
    fn set_lr_changes_step_size() {
        let w = Tensor::var_from_vec(vec![0.0], [1]);
        let mut opt = Sgd::new(vec![w.clone()], 0.1, 0.0);
        let grads = w.sum_all().backward(); // dw = 1
        opt.step(&grads);
        assert!((w.to_vec()[0] + 0.1).abs() < 1e-6);
        opt.set_lr(0.5);
        opt.step(&grads);
        assert!((w.to_vec()[0] + 0.6).abs() < 1e-6);
    }
}

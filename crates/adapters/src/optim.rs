//! Optimizers over adapter parameters.
//!
//! Only adapter parameters train in adapter-based fine-tuning, so
//! optimizer state (the `O` component of the paper's memory model) is
//! proportional to `A`, not to the base model.

use menos_tensor::{CheckpointError, GradStore, Tensor};

/// Shared interface for the optimizers used in the experiments.
pub trait Optimizer: Send {
    /// Applies one update step from `grads` to the managed parameters
    /// (in place; the autograd graph is not touched).
    fn step(&mut self, grads: &GradStore);

    /// The managed parameters.
    fn params(&self) -> &[Tensor];

    /// Bytes of optimizer state (momentum/moment buffers), excluding
    /// the parameters themselves.
    fn state_bytes(&self) -> u64;

    /// Overrides the learning rate (driven by an
    /// [`crate::LrSchedule`] between steps).
    fn set_lr(&mut self, lr: f32);

    /// Captures the full mutable state (hyper-parameters, step count,
    /// moment buffers) for a durable snapshot.
    fn to_state(&self) -> OptimState;

    /// Restores state captured by [`to_state`](Self::to_state) into
    /// this optimizer, resuming bit-identically.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] if the state is for a different
    /// optimizer kind or its buffers do not match the managed
    /// parameters.
    fn restore_state(&mut self, state: OptimState) -> Result<(), CheckpointError>;
}

/// Serializable snapshot of an optimizer's mutable state.
///
/// Paired with the parameter values themselves (a [`ParamStore`]
/// checkpoint), this is everything needed to resume training
/// bit-identically after a process restart.
///
/// [`ParamStore`]: menos_tensor::ParamStore
#[derive(Debug, Clone, PartialEq)]
pub enum OptimState {
    /// [`Sgd`] state: hyper-parameters plus per-parameter velocity
    /// buffers (empty when momentum is zero).
    Sgd {
        /// Learning rate at snapshot time.
        lr: f32,
        /// Momentum coefficient.
        momentum: f32,
        /// Per-parameter velocity buffers.
        velocity: Vec<Vec<f32>>,
    },
    /// [`Adam`] state: hyper-parameters, the bias-correction step
    /// count, and both moment buffers.
    Adam {
        /// Learning rate at snapshot time.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Denominator stabilizer.
        eps: f32,
        /// Steps taken (drives bias correction).
        t: u64,
        /// Per-parameter first moments.
        m: Vec<Vec<f32>>,
        /// Per-parameter second moments.
        v: Vec<Vec<f32>>,
    },
}

const OPTIM_KIND_SGD: u8 = 0;
const OPTIM_KIND_ADAM: u8 = 1;
const MAX_OPTIM_BUFFERS: u64 = 1 << 16;
const MAX_OPTIM_BUFFER_LEN: u64 = 1 << 32;

struct OptimCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> OptimCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(CheckpointError::Truncated)?;
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn buffers(&mut self) -> Result<Vec<Vec<f32>>, CheckpointError> {
        let n = self.u64()?;
        if n > MAX_OPTIM_BUFFERS {
            return Err(CheckpointError::Corrupt(format!("{n} optimizer buffers")));
        }
        let mut bufs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let len = self.u64()?;
            if len > MAX_OPTIM_BUFFER_LEN {
                return Err(CheckpointError::Corrupt(format!(
                    "optimizer buffer of {len} elements"
                )));
            }
            let mut data = Vec::with_capacity(len as usize);
            for _ in 0..len {
                data.push(self.f32()?);
            }
            bufs.push(data);
        }
        Ok(bufs)
    }
    fn finish(&self) -> Result<(), CheckpointError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes in optimizer state",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn write_buffers(out: &mut Vec<u8>, bufs: &[Vec<f32>]) {
    out.extend((bufs.len() as u64).to_le_bytes());
    for b in bufs {
        out.extend((b.len() as u64).to_le_bytes());
        for &x in b {
            out.extend(x.to_le_bytes());
        }
    }
}

impl OptimState {
    /// Human-readable kind tag (for mismatch diagnostics).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            OptimState::Sgd { .. } => "sgd",
            OptimState::Adam { .. } => "adam",
        }
    }

    /// Serializes to the little-endian byte form embedded in session
    /// snapshots: `kind (u8)` then kind-specific hyper-parameters and
    /// length-prefixed moment buffers.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            OptimState::Sgd {
                lr,
                momentum,
                velocity,
            } => {
                out.push(OPTIM_KIND_SGD);
                out.extend(lr.to_le_bytes());
                out.extend(momentum.to_le_bytes());
                write_buffers(&mut out, velocity);
            }
            OptimState::Adam {
                lr,
                beta1,
                beta2,
                eps,
                t,
                m,
                v,
            } => {
                out.push(OPTIM_KIND_ADAM);
                out.extend(lr.to_le_bytes());
                out.extend(beta1.to_le_bytes());
                out.extend(beta2.to_le_bytes());
                out.extend(eps.to_le_bytes());
                out.extend(t.to_le_bytes());
                write_buffers(&mut out, m);
                write_buffers(&mut out, v);
            }
        }
        out
    }

    /// Decodes bytes written by [`to_bytes`](Self::to_bytes),
    /// length-validated and rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on truncation, an unknown kind tag, or
    /// implausible buffer counts/lengths — never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<OptimState, CheckpointError> {
        let mut c = OptimCursor { buf: bytes, pos: 0 };
        let state = match c.u8()? {
            OPTIM_KIND_SGD => OptimState::Sgd {
                lr: c.f32()?,
                momentum: c.f32()?,
                velocity: c.buffers()?,
            },
            OPTIM_KIND_ADAM => OptimState::Adam {
                lr: c.f32()?,
                beta1: c.f32()?,
                beta2: c.f32()?,
                eps: c.f32()?,
                t: c.u64()?,
                m: c.buffers()?,
                v: c.buffers()?,
            },
            k => return Err(CheckpointError::Corrupt(format!("optimizer kind {k}"))),
        };
        c.finish()?;
        Ok(state)
    }
}

/// Validates that `bufs` line up one-to-one with `params` element
/// counts (the shape contract between a snapshot and the live
/// optimizer it restores into).
fn check_buffers(what: &str, bufs: &[Vec<f32>], params: &[Tensor]) -> Result<(), CheckpointError> {
    if bufs.len() != params.len() {
        return Err(CheckpointError::Corrupt(format!(
            "{what}: {} buffers for {} parameters",
            bufs.len(),
            params.len()
        )));
    }
    for (i, (b, p)) in bufs.iter().zip(params).enumerate() {
        if b.len() != p.elem_count() {
            return Err(CheckpointError::Corrupt(format!(
                "{what}: buffer {i} has {} elements, parameter has {}",
                b.len(),
                p.elem_count()
            )));
        }
    }
    Ok(())
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an SGD optimizer over `params`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or `momentum` is outside
    /// `[0, 1)`.
    pub fn new(params: Vec<Tensor>, lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        let velocity = if momentum > 0.0 {
            params.iter().map(|p| vec![0.0; p.elem_count()]).collect()
        } else {
            Vec::new()
        };
        Sgd {
            params,
            lr,
            momentum,
            velocity,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, grads: &GradStore) {
        for (i, p) in self.params.iter().enumerate() {
            let Some(g) = grads.get(p) else { continue };
            let g = g.to_vec();
            let mut w = p.storage().write();
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                for j in 0..w.len() {
                    v[j] = self.momentum * v[j] + g[j];
                    w[j] -= self.lr * v[j];
                }
            } else {
                for j in 0..w.len() {
                    w[j] -= self.lr * g[j];
                }
            }
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }

    fn state_bytes(&self) -> u64 {
        self.velocity.iter().map(|v| v.len() as u64 * 4).sum()
    }

    fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    fn to_state(&self) -> OptimState {
        OptimState::Sgd {
            lr: self.lr,
            momentum: self.momentum,
            velocity: self.velocity.clone(),
        }
    }

    fn restore_state(&mut self, state: OptimState) -> Result<(), CheckpointError> {
        let OptimState::Sgd {
            lr,
            momentum,
            velocity,
        } = state
        else {
            return Err(CheckpointError::Corrupt(format!(
                "restoring {} state into sgd",
                state.kind()
            )));
        };
        if !lr.is_finite() || lr <= 0.0 || !(0.0..1.0).contains(&momentum) {
            return Err(CheckpointError::Corrupt(format!(
                "sgd hyper-parameters lr={lr} momentum={momentum}"
            )));
        }
        if momentum > 0.0 {
            check_buffers("sgd velocity", &velocity, &self.params)?;
        } else if !velocity.is_empty() {
            return Err(CheckpointError::Corrupt(
                "sgd velocity present with zero momentum".into(),
            ));
        }
        self.lr = lr;
        self.momentum = momentum;
        self.velocity = velocity;
        Ok(())
    }
}

/// Rescales all gradients in `grads` for `params` so their global L2
/// norm does not exceed `max_norm`, returning the pre-clip norm — the
/// standard stabilizer for LLM fine-tuning.
///
/// # Panics
///
/// Panics if `max_norm` is not positive.
///
/// # Examples
///
/// ```
/// use menos_adapters::clip_grad_norm;
/// use menos_tensor::Tensor;
///
/// let w = Tensor::var_from_vec(vec![3.0, 4.0], [2]);
/// let mut grads = (&w * &w).sum_all().backward(); // grad (6, 8), norm 10
/// let norm = clip_grad_norm(&mut grads, &[w.clone()], 1.0);
/// assert!((norm - 10.0).abs() < 1e-5);
/// let g = grads.get(&w).unwrap().to_vec();
/// assert!((g[0] - 0.6).abs() < 1e-5 && (g[1] - 0.8).abs() < 1e-5);
/// ```
pub fn clip_grad_norm(grads: &mut GradStore, params: &[Tensor], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sum_sq = 0.0f64;
    for p in params {
        if let Some(g) = grads.get(p) {
            for v in g.storage().read().iter() {
                sum_sq += f64::from(*v) * f64::from(*v);
            }
        }
    }
    let norm = (sum_sq as f32).sqrt();
    if norm > max_norm {
        grads.scale(max_norm / norm);
    }
    norm
}

/// Adam with bias correction — the paper's fine-tuning optimizer.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Adam::with_betas(params, lr, 0.9, 0.999, 1e-8)
    }

    /// Creates an Adam optimizer with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or a beta is outside `[0, 1)`.
    pub fn with_betas(params: Vec<Tensor>, lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        let m = params.iter().map(|p| vec![0.0; p.elem_count()]).collect();
        let v = params.iter().map(|p| vec![0.0; p.elem_count()]).collect();
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m,
            v,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, grads: &GradStore) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let Some(g) = grads.get(p) else { continue };
            let g = g.to_vec();
            let mut w = p.storage().write();
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for j in 0..w.len() {
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g[j];
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g[j] * g[j];
                let mhat = m[j] / bc1;
                let vhat = v[j] / bc2;
                w[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }

    fn state_bytes(&self) -> u64 {
        // Two moment buffers, 4 bytes per element each.
        self.m
            .iter()
            .zip(self.v.iter())
            .map(|(m, v)| (m.len() + v.len()) as u64 * 4)
            .sum()
    }

    fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    fn to_state(&self) -> OptimState {
        OptimState::Adam {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    fn restore_state(&mut self, state: OptimState) -> Result<(), CheckpointError> {
        let OptimState::Adam {
            lr,
            beta1,
            beta2,
            eps,
            t,
            m,
            v,
        } = state
        else {
            return Err(CheckpointError::Corrupt(format!(
                "restoring {} state into adam",
                state.kind()
            )));
        };
        if !lr.is_finite()
            || lr <= 0.0
            || !(0.0..1.0).contains(&beta1)
            || !(0.0..1.0).contains(&beta2)
        {
            return Err(CheckpointError::Corrupt(format!(
                "adam hyper-parameters lr={lr} beta1={beta1} beta2={beta2}"
            )));
        }
        check_buffers("adam m", &m, &self.params)?;
        check_buffers("adam v", &v, &self.params)?;
        self.lr = lr;
        self.beta1 = beta1;
        self.beta2 = beta2;
        self.eps = eps;
        self.t = t;
        self.m = m;
        self.v = v;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes `(w - 3)^2` and returns the final weight.
    fn optimize(mut opt: impl Optimizer, steps: usize) -> f32 {
        let w = opt.params()[0].clone();
        for _ in 0..steps {
            let loss = (&w.add_scalar(-3.0) * &w.add_scalar(-3.0)).sum_all();
            let grads = loss.backward();
            opt.step(&grads);
        }
        w.to_vec()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = Tensor::var_from_vec(vec![0.0], [1]);
        let end = optimize(Sgd::new(vec![w], 0.1, 0.0), 50);
        assert!((end - 3.0).abs() < 1e-3, "w = {end}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = Tensor::var_from_vec(vec![0.0], [1]);
        let end = optimize(Sgd::new(vec![w], 0.05, 0.9), 100);
        assert!((end - 3.0).abs() < 0.1, "w = {end}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = Tensor::var_from_vec(vec![0.0], [1]);
        let end = optimize(Adam::new(vec![w], 0.3), 100);
        assert!((end - 3.0).abs() < 0.05, "w = {end}");
    }

    #[test]
    fn optimizer_ignores_params_without_grads() {
        let w = Tensor::var_from_vec(vec![1.0], [1]);
        let unused = Tensor::var_from_vec(vec![5.0], [1]);
        let mut opt = Sgd::new(vec![w.clone(), unused.clone()], 0.1, 0.0);
        let loss = (&w * &w).sum_all();
        opt.step(&loss.backward());
        assert_eq!(unused.to_vec(), vec![5.0]);
        assert!(w.to_vec()[0] < 1.0);
    }

    #[test]
    fn state_bytes_accounting() {
        let params = vec![Tensor::var_from_vec(vec![0.0; 10], [10])];
        assert_eq!(Sgd::new(params.clone(), 0.1, 0.0).state_bytes(), 0);
        assert_eq!(Sgd::new(params.clone(), 0.1, 0.5).state_bytes(), 40);
        // Adam: m and v, 2 * 10 * 4 bytes.
        assert_eq!(Adam::new(params, 0.1).state_bytes(), 80);
    }

    #[test]
    fn adam_counts_steps() {
        let w = Tensor::var_from_vec(vec![0.0], [1]);
        let mut opt = Adam::new(vec![w.clone()], 0.1);
        assert_eq!(opt.steps(), 0);
        let loss = (&w * &w).sum_all();
        opt.step(&loss.backward());
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn updates_propagate_through_shared_storage() {
        // The optimizer updates the storage in place, so every aliased
        // view of the parameter observes the new value — required for
        // adapters bound into a model structure.
        let w = Tensor::var_from_vec(vec![1.0], [1]);
        let alias = w.detach();
        let mut opt = Sgd::new(vec![w.clone()], 0.5, 0.0);
        let loss = (&w * &w).sum_all();
        opt.step(&loss.backward());
        assert_eq!(alias.to_vec(), w.to_vec());
        assert!(alias.to_vec()[0] < 1.0);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn bad_lr_rejected() {
        Sgd::new(vec![], 0.0, 0.0);
    }

    #[test]
    fn clip_grad_norm_caps_and_reports() {
        let w = Tensor::var_from_vec(vec![3.0, 4.0], [2]);
        let mut grads = (&w * &w).sum_all().backward(); // (6, 8), norm 10
        let norm = clip_grad_norm(&mut grads, &[w.clone()], 5.0);
        assert!((norm - 10.0).abs() < 1e-4);
        let g = grads.get(&w).unwrap().to_vec();
        let clipped = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((clipped - 5.0).abs() < 1e-4);
        // Already-small grads are untouched.
        let mut grads = (&w * &w).sum_all().backward();
        clip_grad_norm(&mut grads, &[w.clone()], 100.0);
        assert_eq!(grads.get(&w).unwrap().to_vec(), vec![6.0, 8.0]);
    }

    /// Runs `steps` identical quadratic-loss steps against `opt`.
    fn drive(opt: &mut dyn Optimizer, w: &Tensor, steps: usize) {
        for _ in 0..steps {
            let loss = (&w.add_scalar(-3.0) * &w.add_scalar(-3.0)).sum_all();
            opt.step(&loss.backward());
        }
    }

    /// Snapshot mid-run, restore into a fresh optimizer over a copied
    /// parameter, continue both — trajectories must match bit-for-bit.
    fn assert_resumes_bit_identically(
        make: impl Fn(Vec<Tensor>) -> Box<dyn Optimizer>,
        total: usize,
        cut: usize,
    ) {
        let w = Tensor::var_from_vec(vec![0.25, -1.5], [2]);
        let mut opt = make(vec![w.clone()]);
        drive(opt.as_mut(), &w, cut);

        let state_bytes = opt.to_state().to_bytes();
        let w2 = Tensor::var_from_vec(w.to_vec(), [2]);
        let mut resumed = make(vec![w2.clone()]);
        resumed
            .restore_state(OptimState::from_bytes(&state_bytes).unwrap())
            .unwrap();

        drive(opt.as_mut(), &w, total - cut);
        drive(resumed.as_mut(), &w2, total - cut);
        let bits = |t: &Tensor| t.to_vec().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&w), bits(&w2), "restored run diverged");
        assert_eq!(opt.to_state(), resumed.to_state(), "state diverged");
    }

    #[test]
    fn sgd_state_round_trips_and_resumes_bit_identically() {
        assert_resumes_bit_identically(|p| Box::new(Sgd::new(p, 0.05, 0.9)), 20, 7);
        assert_resumes_bit_identically(|p| Box::new(Sgd::new(p, 0.1, 0.0)), 10, 3);
    }

    #[test]
    fn adam_state_round_trips_and_resumes_bit_identically() {
        // The cut lands mid-bias-correction: `t` must be restored or
        // the continuation diverges immediately.
        assert_resumes_bit_identically(|p| Box::new(Adam::new(p, 0.3)), 20, 5);
    }

    #[test]
    fn optim_state_rejects_kind_mismatch_and_bad_buffers() {
        let w = Tensor::var_from_vec(vec![0.0; 4], [4]);
        let mut sgd = Sgd::new(vec![w.clone()], 0.1, 0.9);
        let mut adam = Adam::new(vec![w.clone()], 0.1);

        // Kind crossover both ways.
        assert!(sgd.restore_state(adam.to_state()).is_err());
        assert!(adam.restore_state(sgd.to_state()).is_err());

        // Velocity buffer sized for a different parameter.
        let bad = OptimState::Sgd {
            lr: 0.1,
            momentum: 0.9,
            velocity: vec![vec![0.0; 3]],
        };
        assert!(sgd.restore_state(bad).is_err());

        // Moment buffer count mismatch.
        let bad = OptimState::Adam {
            lr: 0.1,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 1,
            m: vec![vec![0.0; 4], vec![0.0; 4]],
            v: vec![vec![0.0; 4]],
        };
        assert!(adam.restore_state(bad).is_err());

        // Hyper-parameters outside the constructor's contract.
        let bad = OptimState::Sgd {
            lr: -1.0,
            momentum: 0.0,
            velocity: vec![],
        };
        assert!(sgd.restore_state(bad).is_err());
    }

    #[test]
    fn optim_state_decode_rejects_corruption() {
        let w = Tensor::var_from_vec(vec![0.0; 4], [4]);
        let bytes = Adam::new(vec![w], 0.1).to_state().to_bytes();
        for cut in 0..bytes.len() {
            assert!(OptimState::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Unknown kind tag.
        let mut bad = bytes.clone();
        bad[0] = 7;
        assert!(OptimState::from_bytes(&bad).is_err());
        // Trailing garbage.
        let mut grown = bytes.clone();
        grown.push(0);
        assert!(OptimState::from_bytes(&grown).is_err());
        // Implausible buffer count.
        let mut sgd_bytes = OptimState::Sgd {
            lr: 0.1,
            momentum: 0.0,
            velocity: vec![],
        }
        .to_bytes();
        let n = sgd_bytes.len();
        sgd_bytes[n - 8..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(OptimState::from_bytes(&sgd_bytes).is_err());
    }

    #[test]
    fn set_lr_changes_step_size() {
        let w = Tensor::var_from_vec(vec![0.0], [1]);
        let mut opt = Sgd::new(vec![w.clone()], 0.1, 0.0);
        let grads = w.sum_all().backward(); // dw = 1
        opt.step(&grads);
        assert!((w.to_vec()[0] + 0.1).abs() < 1e-6);
        opt.set_lr(0.5);
        opt.step(&grads);
        assert!((w.to_vec()[0] + 0.6).abs() < 1e-6);
    }
}

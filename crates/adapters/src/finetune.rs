//! Client fine-tuning configurations and adapter injection.
//!
//! In Menos' workflow a client first reports its fine-tuning
//! configuration; the server initializes adapters and an optimizer for
//! the client and profiles the resulting memory demands. This module
//! defines that configuration object and the injection routine both
//! sides use on their own model sections.

use std::ops::Range;
use std::sync::Arc;

use rand::Rng;
use serde::{Deserialize, Serialize};

use menos_models::{AdapterTarget, CausalLm, LoraSpec, ModelConfig};
use menos_tensor::{ParamStore, Tensor};

use crate::lora::LoraAdapter;
use crate::optim::{Adam, Optimizer, Sgd};
use crate::prefix::PrefixAdapter;

/// Which adapter family a client fine-tunes with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdapterKind {
    /// LoRA on the listed projection targets.
    Lora {
        /// Rank/alpha settings.
        spec: LoraSpec,
        /// Projections to adapt in every block (paper: `[Q, V]`).
        targets: Vec<AdapterTarget>,
    },
    /// Prefix tuning with `len` learned KV positions per block.
    Prefix {
        /// Number of prefix positions.
        len: usize,
    },
}

/// Optimizer selection and hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimKind {
    /// Adam with the given learning rate.
    Adam {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with learning rate and momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum in `[0, 1)`.
        momentum: f32,
    },
}

/// Everything a client reports to the server before fine-tuning starts
/// (paper §3.3): adapter settings (determine `A`) and fine-tuning
/// settings (determine `O` and `I`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FineTuneConfig {
    /// Adapter family and settings.
    pub adapter: AdapterKind,
    /// Optimizer settings.
    pub optimizer: OptimKind,
    /// Training batch size.
    pub batch_size: usize,
    /// Maximum sequence length.
    pub seq_len: usize,
    /// Micro-steps accumulated per optimizer step (≥ 1). Gradient
    /// accumulation is one of the orthogonal memory techniques the
    /// paper cites (§1): k micro-batches emulate a k× batch at the
    /// memory cost of one.
    pub grad_accumulation: usize,
}

impl FineTuneConfig {
    /// The paper's configuration: LoRA r=8 α=16 on Q and V, Adam.
    pub fn paper(model: &ModelConfig) -> Self {
        FineTuneConfig {
            adapter: AdapterKind::Lora {
                spec: LoraSpec::paper(),
                targets: vec![AdapterTarget::Q, AdapterTarget::V],
            },
            optimizer: OptimKind::Adam { lr: 3e-4 },
            batch_size: menos_models::paper_batch_size(model),
            seq_len: menos_models::PAPER_SEQ_LEN,
            grad_accumulation: 1,
        }
    }

    /// Validates the configuration against a model.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self, model: &ModelConfig) -> Result<(), String> {
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.grad_accumulation == 0 {
            return Err("grad_accumulation must be at least 1".into());
        }
        if self.seq_len == 0 || self.seq_len > model.max_seq {
            return Err(format!(
                "seq_len {} outside (0, {}]",
                self.seq_len, model.max_seq
            ));
        }
        match &self.adapter {
            AdapterKind::Lora { spec, targets } => {
                if targets.is_empty() {
                    return Err("LoRA needs at least one target projection".into());
                }
                if spec.rank == 0 || spec.rank > model.hidden {
                    return Err(format!(
                        "LoRA rank {} invalid for hidden {}",
                        spec.rank, model.hidden
                    ));
                }
            }
            AdapterKind::Prefix { len } => {
                if *len == 0 || *len >= model.max_seq {
                    return Err(format!("prefix length {len} invalid"));
                }
            }
        }
        match self.optimizer {
            OptimKind::Adam { lr } => {
                if lr <= 0.0 {
                    return Err("Adam lr must be positive".into());
                }
            }
            OptimKind::Sgd { lr, momentum } => {
                if lr <= 0.0 || !(0.0..1.0).contains(&momentum) {
                    return Err("SGD lr/momentum invalid".into());
                }
            }
        }
        Ok(())
    }
}

/// Projection dimensions for an adapter target under `cfg`.
fn target_dims(cfg: &ModelConfig, target: AdapterTarget) -> (usize, usize) {
    let h = cfg.hidden;
    let ffn = cfg.intermediate;
    match target {
        AdapterTarget::Q | AdapterTarget::K | AdapterTarget::V | AdapterTarget::O => (h, h),
        AdapterTarget::MlpUp => (h, ffn),
        AdapterTarget::MlpDown => (ffn, h),
    }
}

/// Injects adapters into `model` for blocks `layers` and returns the
/// trainable adapter parameters, named like
/// [`CausalLm::adapter_params`].
///
/// # Panics
///
/// Panics if the config is invalid for this model or the layer range is
/// out of bounds.
pub fn inject_adapters<R: Rng>(
    model: &mut CausalLm,
    layers: Range<usize>,
    ft: &FineTuneConfig,
    rng: &mut R,
) -> ParamStore {
    ft.validate(&model.config)
        .expect("invalid fine-tune config");
    assert!(
        layers.end <= model.num_blocks(),
        "layer range out of bounds"
    );
    let cfg = model.config.clone();
    let injected = layers.clone();
    for layer in layers {
        match &ft.adapter {
            AdapterKind::Lora { spec, targets } => {
                for &t in targets {
                    let (in_dim, out_dim) = target_dims(&cfg, t);
                    let adapter = Arc::new(LoraAdapter::new(rng, in_dim, out_dim, spec));
                    model.set_linear_adapter(layer, t, adapter);
                }
            }
            AdapterKind::Prefix { len } => {
                let adapter = Arc::new(PrefixAdapter::new(rng, cfg.heads, cfg.head_dim(), *len));
                model.set_kv_prefix(layer, adapter);
            }
        }
    }
    // Return only the params injected by THIS call: a model may carry
    // adapters in other layer ranges (e.g. the local baseline injects
    // client and server ranges separately and must not double-train).
    model
        .adapter_params()
        .iter()
        .filter(|(name, _)| {
            injected
                .clone()
                .any(|l| name.starts_with(&format!("blocks.{l}.")))
        })
        .map(|(n, t)| (n.clone(), t.clone()))
        .collect()
}

/// Builds the optimizer described by `ft` over `params`.
pub fn build_optimizer(ft: &FineTuneConfig, params: Vec<Tensor>) -> Box<dyn Optimizer> {
    match ft.optimizer {
        OptimKind::Adam { lr } => Box::new(Adam::new(params, lr)),
        OptimKind::Sgd { lr, momentum } => Box::new(Sgd::new(params, lr, momentum)),
    }
}

/// Analytic adapter byte count for a config over `n_layers` blocks —
/// used by the paper-scale memory accounting so the analytic and real
/// paths agree.
pub fn adapter_bytes(ft: &FineTuneConfig, model: &ModelConfig, n_layers: usize) -> u64 {
    match &ft.adapter {
        AdapterKind::Lora { spec, targets } => {
            let per_layer: u64 = targets
                .iter()
                .map(|&t| {
                    let (i, o) = target_dims(model, t);
                    ((i + o) * spec.rank) as u64 * 4
                })
                .sum();
            n_layers as u64 * per_layer
        }
        AdapterKind::Prefix { len } => {
            let per_layer = 2 * (model.heads * len * model.head_dim()) as u64 * 4;
            n_layers as u64 * per_layer
        }
    }
}

/// Analytic optimizer-state bytes for a config (`O` component).
pub fn optimizer_state_bytes(ft: &FineTuneConfig, adapter_bytes: u64) -> u64 {
    match ft.optimizer {
        OptimKind::Adam { .. } => 2 * adapter_bytes,
        OptimKind::Sgd { momentum, .. } => {
            if momentum > 0.0 {
                adapter_bytes
            } else {
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menos_models::{init_params, Arch};
    use menos_sim::seeded_rng;

    fn tiny_model(arch: Arch) -> (ModelConfig, CausalLm) {
        let cfg = match arch {
            Arch::Opt => ModelConfig::tiny_opt(13),
            Arch::Llama => ModelConfig::tiny_llama(13),
        };
        let mut rng = seeded_rng(11, "ft-test");
        let ps = init_params(&cfg, &mut rng);
        let lm = CausalLm::bind(&cfg, &ps);
        (cfg, lm)
    }

    #[test]
    fn paper_config_validates() {
        for cfg in [ModelConfig::opt_1_3b(), ModelConfig::llama2_7b()] {
            FineTuneConfig::paper(&cfg).validate(&cfg).unwrap();
        }
    }

    #[test]
    fn lora_injection_creates_expected_params() {
        let (cfg, mut lm) = tiny_model(Arch::Llama);
        let ft = FineTuneConfig::paper(&cfg);
        let mut rng = seeded_rng(1, "inject");
        let params = inject_adapters(&mut lm, 1..4, &ft, &mut rng);
        // 3 layers × 2 targets × 2 factors.
        assert_eq!(params.len(), 12);
        assert!(params.get("blocks.1.attn.q.lora.a").is_some());
        assert!(params.get("blocks.3.attn.v.lora.b").is_some());
        assert!(
            params.get("blocks.0.attn.q.lora.a").is_none(),
            "layer 0 untouched"
        );
        assert!(params.tensors().all(|t| t.requires_grad()));
    }

    #[test]
    fn prefix_injection_creates_expected_params() {
        let (_cfg, mut lm) = tiny_model(Arch::Opt);
        let ft = FineTuneConfig {
            adapter: AdapterKind::Prefix { len: 4 },
            optimizer: OptimKind::Sgd {
                lr: 0.1,
                momentum: 0.0,
            },
            batch_size: 2,
            seq_len: 8,
            grad_accumulation: 1,
        };
        let mut rng = seeded_rng(2, "inject");
        let params = inject_adapters(&mut lm, 0..2, &ft, &mut rng);
        assert_eq!(params.len(), 4); // 2 layers × (k, v)
        assert!(params.get("blocks.0.attn.prefix.prefix.k").is_some());
    }

    #[test]
    fn fresh_lora_does_not_change_forward() {
        let (cfg, mut lm) = tiny_model(Arch::Llama);
        let ids = [1usize, 5, 9, 2];
        let before = lm.forward(&ids, 1, 4);
        let ft = FineTuneConfig::paper(&cfg);
        let mut rng = seeded_rng(3, "inject");
        inject_adapters(&mut lm, 0..4, &ft, &mut rng);
        let after = lm.forward(&ids, 1, 4);
        assert!(
            before.max_abs_diff(&after) < 1e-6,
            "zero-init B must be a no-op"
        );
    }

    #[test]
    fn adapter_bytes_agree_with_real_injection() {
        let (cfg, mut lm) = tiny_model(Arch::Llama);
        let ft = FineTuneConfig::paper(&cfg);
        let mut rng = seeded_rng(4, "inject");
        let params = inject_adapters(&mut lm, 1..4, &ft, &mut rng);
        assert_eq!(params.size_bytes(), adapter_bytes(&ft, &cfg, 3));
    }

    #[test]
    fn optimizer_state_bytes_by_kind() {
        let cfg = ModelConfig::tiny_opt(13);
        let mut ft = FineTuneConfig::paper(&cfg);
        assert_eq!(optimizer_state_bytes(&ft, 100), 200);
        ft.optimizer = OptimKind::Sgd {
            lr: 0.1,
            momentum: 0.9,
        };
        assert_eq!(optimizer_state_bytes(&ft, 100), 100);
        ft.optimizer = OptimKind::Sgd {
            lr: 0.1,
            momentum: 0.0,
        };
        assert_eq!(optimizer_state_bytes(&ft, 100), 0);
    }

    #[test]
    fn build_optimizer_matches_kind() {
        let p = vec![Tensor::var_from_vec(vec![0.0], [1])];
        let ft = FineTuneConfig {
            adapter: AdapterKind::Prefix { len: 1 },
            optimizer: OptimKind::Adam { lr: 0.01 },
            batch_size: 1,
            seq_len: 4,
            grad_accumulation: 1,
        };
        let opt = build_optimizer(&ft, p);
        assert_eq!(opt.state_bytes(), 8); // Adam: 2 buffers × 1 elem × 4B
    }

    #[test]
    fn end_to_end_lora_training_reduces_loss() {
        let (_cfg, mut lm) = tiny_model(Arch::Opt);
        let ft = FineTuneConfig {
            adapter: AdapterKind::Lora {
                spec: LoraSpec {
                    rank: 4,
                    alpha: 8.0,
                    targets_per_block: 2,
                },
                targets: vec![AdapterTarget::Q, AdapterTarget::V],
            },
            optimizer: OptimKind::Adam { lr: 0.01 },
            batch_size: 1,
            seq_len: 8,
            grad_accumulation: 1,
        };
        let mut rng = seeded_rng(5, "train");
        let params = inject_adapters(&mut lm, 0..4, &ft, &mut rng);
        let mut opt = build_optimizer(&ft, params.tensors().cloned().collect());
        let ids = [1usize, 2, 3, 4, 5, 6, 7, 8];
        let targets = [2usize, 3, 4, 5, 6, 7, 8, 9];
        let mut losses = Vec::new();
        for _ in 0..30 {
            let logits = lm.forward(&ids, 1, 8);
            let loss = menos_models::causal_lm_loss(&logits, &targets);
            losses.push(loss.to_scalar());
            opt.step(&loss.backward());
        }
        assert!(
            losses.last().unwrap() < &(losses[0] - 0.1),
            "LoRA training should reduce loss: {losses:?}"
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let cfg = ModelConfig::tiny_opt(13);
        let mut ft = FineTuneConfig::paper(&cfg);
        ft.batch_size = 0;
        assert!(ft.validate(&cfg).is_err());

        let mut ft = FineTuneConfig::paper(&cfg);
        ft.seq_len = 10_000;
        assert!(ft.validate(&cfg).is_err());

        let ft = FineTuneConfig {
            adapter: AdapterKind::Lora {
                spec: LoraSpec {
                    rank: 0,
                    alpha: 1.0,
                    targets_per_block: 1,
                },
                targets: vec![AdapterTarget::Q],
            },
            optimizer: OptimKind::Adam { lr: 0.1 },
            batch_size: 1,
            seq_len: 8,
            grad_accumulation: 1,
        };
        assert!(ft.validate(&cfg).is_err());
    }
}

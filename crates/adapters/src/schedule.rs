//! Learning-rate schedules for fine-tuning runs.
//!
//! Warmup + cosine decay is the de-facto standard for LLM fine-tuning;
//! the schedule is pure (step → learning rate) and the caller applies
//! it through [`crate::Optimizer::set_lr`].

/// A learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// A fixed learning rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Linear warmup from zero to `peak` over `warmup_steps`, then
    /// cosine decay to `floor` at `total_steps`.
    WarmupCosine {
        /// Peak learning rate reached after warmup.
        peak: f32,
        /// Terminal learning rate.
        floor: f32,
        /// Warmup duration in steps.
        warmup_steps: usize,
        /// Total schedule length in steps.
        total_steps: usize,
    },
    /// Linear warmup then constant.
    WarmupConstant {
        /// Learning rate after warmup.
        lr: f32,
        /// Warmup duration in steps.
        warmup_steps: usize,
    },
}

impl LrSchedule {
    /// The learning rate at `step` (0-based).
    ///
    /// # Examples
    ///
    /// ```
    /// use menos_adapters::LrSchedule;
    ///
    /// let s = LrSchedule::WarmupCosine {
    ///     peak: 1.0, floor: 0.1, warmup_steps: 10, total_steps: 110,
    /// };
    /// assert_eq!(s.lr_at(0), 0.1);           // warmup start
    /// assert_eq!(s.lr_at(10), 1.0);          // warmup end = peak
    /// assert!((s.lr_at(110) - 0.1).abs() < 1e-6); // decayed to floor
    /// ```
    pub fn lr_at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::WarmupConstant { lr, warmup_steps } => {
                if warmup_steps == 0 || step >= warmup_steps {
                    lr
                } else {
                    lr * (step + 1) as f32 / warmup_steps as f32
                }
            }
            LrSchedule::WarmupCosine {
                peak,
                floor,
                warmup_steps,
                total_steps,
            } => {
                if warmup_steps > 0 && step < warmup_steps {
                    return peak * (step + 1) as f32 / warmup_steps as f32;
                }
                let decay_len = total_steps.saturating_sub(warmup_steps).max(1);
                let progress = ((step - warmup_steps) as f32 / decay_len as f32).clamp(0.0, 1.0);
                floor + 0.5 * (peak - floor) * (1.0 + (std::f32::consts::PI * progress).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.01 };
        for step in [0, 100, 10_000] {
            assert_eq!(s.lr_at(step), 0.01);
        }
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::WarmupConstant {
            lr: 1.0,
            warmup_steps: 4,
        };
        assert!((s.lr_at(0) - 0.25).abs() < 1e-6);
        assert!((s.lr_at(1) - 0.5).abs() < 1e-6);
        assert!((s.lr_at(3) - 1.0).abs() < 1e-6);
        assert_eq!(s.lr_at(100), 1.0);
    }

    #[test]
    fn cosine_decays_monotonically_after_warmup() {
        let s = LrSchedule::WarmupCosine {
            peak: 0.1,
            floor: 0.01,
            warmup_steps: 5,
            total_steps: 55,
        };
        let mut prev = s.lr_at(5);
        assert!((prev - 0.1).abs() < 1e-6);
        for step in 6..=55 {
            let lr = s.lr_at(step);
            assert!(lr <= prev + 1e-7, "not monotone at {step}: {lr} > {prev}");
            prev = lr;
        }
        assert!((s.lr_at(55) - 0.01).abs() < 1e-6);
        // Past the end: stays at the floor.
        assert!((s.lr_at(1000) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn midpoint_is_halfway() {
        let s = LrSchedule::WarmupCosine {
            peak: 1.0,
            floor: 0.0,
            warmup_steps: 0,
            total_steps: 100,
        };
        assert!((s.lr_at(50) - 0.5).abs() < 1e-2);
    }

    #[test]
    fn degenerate_warmup_handled() {
        let s = LrSchedule::WarmupConstant {
            lr: 0.5,
            warmup_steps: 0,
        };
        assert_eq!(s.lr_at(0), 0.5);
    }
}

//! Prefix tuning: learned key/value positions prepended to attention.

use rand::Rng;

use menos_models::KvPrefixProvider;
use menos_tensor::Tensor;

/// A per-layer prefix-tuning adapter holding trainable key and value
/// prefixes of shape `[heads, prefix_len, head_dim]`.
///
/// Menos supports clients choosing different fine-tuning methods over
/// the same shared base model; this adapter exercises the second hook
/// ([`KvPrefixProvider`]) alongside LoRA's linear hook.
#[derive(Debug)]
pub struct PrefixAdapter {
    k: Tensor,
    v: Tensor,
    prefix_len: usize,
}

impl PrefixAdapter {
    /// Creates a prefix adapter with `prefix_len` learned positions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new<R: Rng>(rng: &mut R, heads: usize, head_dim: usize, prefix_len: usize) -> Self {
        assert!(
            heads > 0 && head_dim > 0 && prefix_len > 0,
            "prefix adapter dims must be positive"
        );
        let std = 0.02;
        PrefixAdapter {
            k: Tensor::randn(rng, [heads, prefix_len, head_dim], std).trainable(),
            v: Tensor::randn(rng, [heads, prefix_len, head_dim], std).trainable(),
            prefix_len,
        }
    }

    /// Trainable parameter bytes.
    pub fn param_bytes(&self) -> u64 {
        self.k.size_bytes() + self.v.size_bytes()
    }
}

impl KvPrefixProvider for PrefixAdapter {
    fn prefix_kv(&self) -> (Tensor, Tensor) {
        (self.k.clone(), self.v.clone())
    }

    fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    fn trainable_params(&self) -> Vec<(String, Tensor)> {
        vec![
            ("prefix.k".to_string(), self.k.clone()),
            ("prefix.v".to_string(), self.v.clone()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menos_sim::seeded_rng;

    #[test]
    fn shapes_and_sizes() {
        let mut rng = seeded_rng(1, "prefix");
        let p = PrefixAdapter::new(&mut rng, 4, 8, 5);
        let (k, v) = p.prefix_kv();
        assert_eq!(k.dims(), &[4, 5, 8]);
        assert_eq!(v.dims(), &[4, 5, 8]);
        assert_eq!(p.prefix_len(), 5);
        assert_eq!(p.param_bytes(), 2 * 4 * 5 * 8 * 4);
    }

    #[test]
    fn params_are_trainable() {
        let mut rng = seeded_rng(2, "prefix");
        let p = PrefixAdapter::new(&mut rng, 2, 4, 3);
        let params = p.trainable_params();
        assert_eq!(params.len(), 2);
        assert!(params.iter().all(|(_, t)| t.requires_grad()));
    }

    #[test]
    fn gradients_reach_prefixes_through_attention() {
        use menos_models::{init_params, CausalLm, ModelConfig};
        use std::sync::Arc;
        let cfg = ModelConfig::tiny_llama(11);
        let mut rng = seeded_rng(3, "prefix");
        let ps = init_params(&cfg, &mut rng);
        let mut lm = CausalLm::bind(&cfg, &ps.shared_view(false));
        let adapter = Arc::new(PrefixAdapter::new(&mut rng, cfg.heads, cfg.head_dim(), 4));
        lm.set_kv_prefix(1, adapter.clone());
        let ids = [1usize, 2, 3, 4];
        let logits = lm.forward(&ids, 1, 4);
        let loss = menos_models::causal_lm_loss(&logits, &[2, 3, 4, 5]);
        let grads = loss.backward();
        let (k, v) = adapter.prefix_kv();
        assert!(grads.get(&k).is_some(), "prefix K should get a gradient");
        assert!(grads.get(&v).is_some(), "prefix V should get a gradient");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_prefix_rejected() {
        let mut rng = seeded_rng(4, "prefix");
        PrefixAdapter::new(&mut rng, 2, 4, 0);
    }
}

//! Prefix tuning: learned key/value positions prepended to attention.

use rand::Rng;

use menos_models::KvPrefixProvider;
use menos_tensor::{
    load_checkpoint, save_checkpoint, CheckpointError, ParamStore, SectionReader, SectionWriter,
    Tensor,
};

/// A per-layer prefix-tuning adapter holding trainable key and value
/// prefixes of shape `[heads, prefix_len, head_dim]`.
///
/// Menos supports clients choosing different fine-tuning methods over
/// the same shared base model; this adapter exercises the second hook
/// ([`KvPrefixProvider`]) alongside LoRA's linear hook.
#[derive(Debug)]
pub struct PrefixAdapter {
    k: Tensor,
    v: Tensor,
    prefix_len: usize,
}

impl PrefixAdapter {
    /// Creates a prefix adapter with `prefix_len` learned positions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new<R: Rng>(rng: &mut R, heads: usize, head_dim: usize, prefix_len: usize) -> Self {
        assert!(
            heads > 0 && head_dim > 0 && prefix_len > 0,
            "prefix adapter dims must be positive"
        );
        let std = 0.02;
        PrefixAdapter {
            k: Tensor::randn(rng, [heads, prefix_len, head_dim], std).trainable(),
            v: Tensor::randn(rng, [heads, prefix_len, head_dim], std).trainable(),
            prefix_len,
        }
    }

    /// Trainable parameter bytes.
    pub fn param_bytes(&self) -> u64 {
        self.k.size_bytes() + self.v.size_bytes()
    }

    /// Serializes the adapter — prefixes and their length — as a
    /// tagged section container for durable snapshots.
    #[must_use]
    pub fn to_state(&self) -> Vec<u8> {
        let mut meta = Vec::new();
        meta.extend((self.prefix_len as u64).to_le_bytes());
        let mut params = ParamStore::new();
        params.insert("prefix.k", self.k.clone());
        params.insert("prefix.v", self.v.clone());
        let mut w = SectionWriter::new();
        w.section(PREFIX_TAG_META, meta);
        w.section(PREFIX_TAG_PARAMS, save_checkpoint(&params));
        w.finish()
    }

    /// Reconstructs an adapter from [`to_state`](Self::to_state)
    /// bytes, bit-identical to the snapshotted one.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on corrupt bytes, missing prefixes, or
    /// shapes inconsistent with the recorded prefix length.
    pub fn from_state(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let r = SectionReader::parse(bytes)?;
        let meta = r.require(PREFIX_TAG_META)?;
        if meta.len() != 8 {
            return Err(CheckpointError::Corrupt(format!(
                "prefix meta of {} bytes",
                meta.len()
            )));
        }
        let prefix_len = u64::from_le_bytes(meta.try_into().expect("8")) as usize;
        let params = load_checkpoint(r.require(PREFIX_TAG_PARAMS)?)?;
        let k = params
            .get("prefix.k")
            .ok_or_else(|| CheckpointError::MissingParam("prefix.k".into()))?
            .clone();
        let v = params
            .get("prefix.v")
            .ok_or_else(|| CheckpointError::MissingParam("prefix.v".into()))?
            .clone();
        for (name, t) in [("prefix.k", &k), ("prefix.v", &v)] {
            if t.rank() != 3 || t.shape().dim(1) != prefix_len {
                return Err(CheckpointError::Corrupt(format!(
                    "{name} shape {:?} inconsistent with prefix_len {prefix_len}",
                    t.dims()
                )));
            }
            if !t.requires_grad() {
                return Err(CheckpointError::Corrupt(format!(
                    "{name} must be trainable"
                )));
            }
        }
        if k.dims() != v.dims() {
            return Err(CheckpointError::Corrupt(format!(
                "prefix k {:?} and v {:?} disagree",
                k.dims(),
                v.dims()
            )));
        }
        if prefix_len == 0 {
            return Err(CheckpointError::Corrupt("prefix_len 0".into()));
        }
        Ok(PrefixAdapter { k, v, prefix_len })
    }
}

const PREFIX_TAG_META: u32 = 1;
const PREFIX_TAG_PARAMS: u32 = 2;

impl KvPrefixProvider for PrefixAdapter {
    fn prefix_kv(&self) -> (Tensor, Tensor) {
        (self.k.clone(), self.v.clone())
    }

    fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    fn trainable_params(&self) -> Vec<(String, Tensor)> {
        vec![
            ("prefix.k".to_string(), self.k.clone()),
            ("prefix.v".to_string(), self.v.clone()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use menos_sim::seeded_rng;

    #[test]
    fn shapes_and_sizes() {
        let mut rng = seeded_rng(1, "prefix");
        let p = PrefixAdapter::new(&mut rng, 4, 8, 5);
        let (k, v) = p.prefix_kv();
        assert_eq!(k.dims(), &[4, 5, 8]);
        assert_eq!(v.dims(), &[4, 5, 8]);
        assert_eq!(p.prefix_len(), 5);
        assert_eq!(p.param_bytes(), 2 * 4 * 5 * 8 * 4);
    }

    #[test]
    fn params_are_trainable() {
        let mut rng = seeded_rng(2, "prefix");
        let p = PrefixAdapter::new(&mut rng, 2, 4, 3);
        let params = p.trainable_params();
        assert_eq!(params.len(), 2);
        assert!(params.iter().all(|(_, t)| t.requires_grad()));
    }

    #[test]
    fn gradients_reach_prefixes_through_attention() {
        use menos_models::{init_params, CausalLm, ModelConfig};
        use std::sync::Arc;
        let cfg = ModelConfig::tiny_llama(11);
        let mut rng = seeded_rng(3, "prefix");
        let ps = init_params(&cfg, &mut rng);
        let mut lm = CausalLm::bind(&cfg, &ps.shared_view(false));
        let adapter = Arc::new(PrefixAdapter::new(&mut rng, cfg.heads, cfg.head_dim(), 4));
        lm.set_kv_prefix(1, adapter.clone());
        let ids = [1usize, 2, 3, 4];
        let logits = lm.forward(&ids, 1, 4);
        let loss = menos_models::causal_lm_loss(&logits, &[2, 3, 4, 5]);
        let grads = loss.backward();
        let (k, v) = adapter.prefix_kv();
        assert!(grads.get(&k).is_some(), "prefix K should get a gradient");
        assert!(grads.get(&v).is_some(), "prefix V should get a gradient");
    }

    #[test]
    fn state_round_trips_bit_identically() {
        let mut rng = seeded_rng(5, "prefix");
        let p = PrefixAdapter::new(&mut rng, 4, 8, 5);
        let restored = PrefixAdapter::from_state(&p.to_state()).unwrap();
        let bits = |t: &Tensor| t.to_vec().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(restored.prefix_len(), 5);
        let (k, v) = p.prefix_kv();
        let (rk, rv) = restored.prefix_kv();
        assert_eq!(rk.dims(), k.dims());
        assert_eq!(bits(&rk), bits(&k));
        assert_eq!(bits(&rv), bits(&v));
        assert!(rk.requires_grad() && rv.requires_grad());
    }

    #[test]
    fn state_decode_rejects_corruption_and_inconsistent_shapes() {
        let mut rng = seeded_rng(6, "prefix");
        let p = PrefixAdapter::new(&mut rng, 2, 4, 3);
        let bytes = p.to_state();
        for cut in 0..bytes.len() {
            assert!(
                PrefixAdapter::from_state(&bytes[..cut]).is_err(),
                "cut={cut}"
            );
        }
        // Prefix length disagreeing with the tensor shapes.
        let mut params = ParamStore::new();
        params.insert("prefix.k", Tensor::var_from_vec(vec![0.0; 24], [2, 3, 4]));
        params.insert("prefix.v", Tensor::var_from_vec(vec![0.0; 24], [2, 3, 4]));
        let mut w = SectionWriter::new();
        w.section(PREFIX_TAG_META, 7u64.to_le_bytes().to_vec());
        w.section(PREFIX_TAG_PARAMS, save_checkpoint(&params));
        assert!(matches!(
            PrefixAdapter::from_state(&w.finish()),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_prefix_rejected() {
        let mut rng = seeded_rng(4, "prefix");
        PrefixAdapter::new(&mut rng, 2, 4, 0);
    }
}

//! # menos-adapters — parameter-efficient fine-tuning methods
//!
//! LoRA and prefix-tuning adapters implementing the injection hooks
//! defined by `menos-models`, plus the optimizers (Adam, SGD) that train
//! only adapter parameters, and the [`FineTuneConfig`] clients report to
//! the Menos server before profiling.
//!
//! The central property exploited by Menos: adapters own their (tiny)
//! trainable parameters privately, while the base weights they attach to
//! are frozen and can therefore be shared across clients.
//!
//! # Examples
//!
//! ```
//! use menos_adapters::{inject_adapters, build_optimizer, FineTuneConfig};
//! use menos_models::{init_params, CausalLm, ModelConfig};
//!
//! let cfg = ModelConfig::tiny_llama(32);
//! let mut rng = menos_sim::seeded_rng(0, "doc");
//! let params = init_params(&cfg, &mut rng);
//! let mut model = CausalLm::bind(&cfg, &params.shared_view(false));
//!
//! let ft = FineTuneConfig::paper(&cfg);
//! let adapters = inject_adapters(&mut model, 1..4, &ft, &mut rng);
//! let _optimizer = build_optimizer(&ft, adapters.tensors().cloned().collect());
//! assert_eq!(adapters.len(), 12); // 3 layers x (q, v) x (A, B)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod finetune;
mod lora;
mod optim;
mod prefix;
mod schedule;

pub use finetune::{
    adapter_bytes, build_optimizer, inject_adapters, optimizer_state_bytes, AdapterKind,
    FineTuneConfig, OptimKind,
};
pub use lora::LoraAdapter;
pub use optim::{clip_grad_norm, Adam, OptimState, Optimizer, Sgd};
pub use prefix::PrefixAdapter;
pub use schedule::LrSchedule;

//! # menos-sim — deterministic discrete-event simulation kernel
//!
//! The Menos paper evaluates split fine-tuning on a real geo-distributed
//! testbed (a V100 server in Vancouver, GPU/CPU clients in Toronto). This
//! reproduction replaces wall-clock hardware with a deterministic
//! discrete-event simulation: every timed resource (WAN links, GPU
//! compute, PCIe swaps) charges durations on a shared virtual clock, and
//! an [`EventQueue`] delivers events in exact time order with
//! insertion-order tie-breaking.
//!
//! The kernel is intentionally minimal — a time type, an event queue,
//! statistics accumulators, and seeded RNG derivation — so that the
//! domain crates (`menos-gpu`, `menos-net`, `menos-core`) own their own
//! event vocabularies.
//!
//! # Examples
//!
//! A tiny ping-pong simulation:
//!
//! ```
//! use menos_sim::{EventQueue, Nanos};
//!
//! #[derive(Debug)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule_after(Nanos::from_millis(30), Ev::Ping);
//! let mut log = Vec::new();
//! while let Some((t, ev)) = q.pop() {
//!     match ev {
//!         Ev::Ping => {
//!             log.push((t, "ping"));
//!             q.schedule_after(Nanos::from_millis(30), Ev::Pong);
//!         }
//!         Ev::Pong => {
//!             log.push((t, "pong"));
//!             q.schedule_after(Nanos::from_millis(30), Ev::Ping);
//!         }
//!     }
//!     if log.len() >= 4 { break; }
//! }
//! assert_eq!(log.len(), 4);
//! assert_eq!(log[3].0, Nanos::from_millis(120));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
mod rng;
mod stats;
mod time;

pub use queue::{EventId, EventQueue};
pub use rng::{jitter_factor, seeded_rng};
pub use stats::{format_bytes, PeakTracker, Summary};
pub use time::{compute_time, transfer_time, Nanos};

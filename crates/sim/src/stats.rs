//! Small statistics accumulators used by the experiment harnesses.

use crate::time::Nanos;

/// Streaming summary of a series of samples (Welford's algorithm for
/// mean/variance plus retained samples for exact percentiles).
///
/// # Examples
///
/// ```
/// use menos_sim::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.add(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            samples: Vec::new(),
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
        let n = self.samples.len() as f64;
        let d = x - self.mean;
        self.mean += d / n;
        self.m2 += d * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Adds a duration sample in seconds.
    pub fn add_time(&mut self, t: Nanos) {
        self.add(t.as_secs_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; zero when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.samples.len() < 2 {
            0.0
        } else {
            self.m2 / self.samples.len() as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample; zero when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; zero when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.max
        }
    }

    /// Exact percentile by nearest-rank (`p` in `[0, 100]`); zero when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or NaN.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank]
    }

    /// Sum of all samples.
    pub fn total(&self) -> f64 {
        self.samples.iter().sum()
    }
}

/// Tracks the running maximum of a quantity over time — used for peak
/// GPU memory reporting.
///
/// # Examples
///
/// ```
/// use menos_sim::PeakTracker;
///
/// let mut p = PeakTracker::new();
/// p.record(10);
/// p.record(3);
/// assert_eq!(p.peak(), 10);
/// assert_eq!(p.current(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeakTracker {
    current: u64,
    peak: u64,
}

impl PeakTracker {
    /// Creates a tracker at zero.
    pub fn new() -> Self {
        PeakTracker::default()
    }

    /// Sets the current value, updating the peak.
    pub fn record(&mut self, value: u64) {
        self.current = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// Adds to the current value, updating the peak.
    pub fn add(&mut self, delta: u64) {
        self.record(self.current + delta);
    }

    /// Subtracts from the current value (saturating).
    pub fn sub(&mut self, delta: u64) {
        self.current = self.current.saturating_sub(delta);
    }

    /// Current value.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Highest value ever recorded.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Resets the peak to the current value.
    pub fn reset_peak(&mut self) {
        self.peak = self.current;
    }
}

/// Formats a byte count with binary units, matching how the paper
/// reports GPU memory (GB).
///
/// # Examples
///
/// ```
/// assert_eq!(menos_sim::format_bytes(24 * (1 << 30)), "24.00 GiB");
/// assert_eq!(menos_sim::format_bytes(512), "512 B");
/// ```
pub fn format_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.2} GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.2} MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.2} KiB", b / KIB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
        assert!((s.total() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
    }

    #[test]
    fn summary_percentiles() {
        let mut s = Summary::new();
        for x in 1..=100 {
            s.add(x as f64);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        let med = s.percentile(50.0);
        assert!((50.0..=51.0).contains(&med));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        Summary::new().percentile(101.0);
    }

    #[test]
    fn summary_time_samples() {
        let mut s = Summary::new();
        s.add_time(Nanos::from_millis(1500));
        assert!((s.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn peak_tracker() {
        let mut p = PeakTracker::new();
        p.add(100);
        p.add(50);
        p.sub(120);
        assert_eq!(p.current(), 30);
        assert_eq!(p.peak(), 150);
        p.reset_peak();
        assert_eq!(p.peak(), 30);
        p.sub(100);
        assert_eq!(p.current(), 0);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.00 MiB");
    }
}

//! The event queue at the heart of the discrete-event kernel.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

struct Scheduled<E> {
    at: Nanos,
    seq: u64,
    id: EventId,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    // Reverse ordering: BinaryHeap is a max-heap, we want earliest-first.
    // Ties broken by insertion sequence for full determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events of type `E` are scheduled at absolute virtual times and popped
/// in time order; ties are broken by insertion order, so two runs with
/// the same schedule sequence produce the same execution. The queue owns
/// the current clock: popping an event advances [`EventQueue::now`].
///
/// # Examples
///
/// ```
/// use menos_sim::{EventQueue, Nanos};
///
/// let mut q = EventQueue::new();
/// q.schedule_after(Nanos::from_secs(2), "second");
/// q.schedule_after(Nanos::from_secs(1), "first");
/// assert_eq!(q.pop().map(|(_, e)| e), Some("first"));
/// assert_eq!(q.now(), Nanos::from_secs(1));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("second"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: Nanos,
    seq: u64,
    next_id: u64,
    cancelled: Vec<EventId>,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at the epoch.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: Nanos::ZERO,
            seq: 0,
            next_id: 0,
            cancelled: Vec::new(),
            popped: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Number of events popped so far.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of pending events (including cancelled ones not yet
    /// reaped).
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time — scheduling into
    /// the past is always a logic error in a DES.
    pub fn schedule_at(&mut self, at: Nanos, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} < now={}",
            self.now
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            id,
            event,
        });
        self.seq += 1;
        id
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, delay: Nanos, event: E) -> EventId {
        let at = self.now + delay;
        self.schedule_at(at, event)
    }

    /// Schedules `event` to run at the current time, after all events
    /// already scheduled for the current time.
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.schedule_at(self.now, event)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancellation is lazy: the entry stays in the heap and is skipped
    /// when popped. Returns `true` if the id had not already been
    /// cancelled (popped events are not tracked and return `true` too —
    /// cancelling an already-delivered event is a harmless no-op skip).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.cancelled.contains(&id) {
            false
        } else {
            self.cancelled.push(id);
            true
        }
    }

    /// Pops the earliest live event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        while let Some(s) = self.heap.pop() {
            if let Some(pos) = self.cancelled.iter().position(|c| *c == s.id) {
                self.cancelled.swap_remove(pos);
                continue;
            }
            debug_assert!(s.at >= self.now, "event queue time went backwards");
            self.now = s.at;
            self.popped += 1;
            return Some((s.at, s.event));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&self) -> Option<Nanos> {
        // Cancelled entries may shadow the true head; scan past them.
        // The cancelled list is tiny in practice so this stays cheap.
        let mut times: Vec<(Nanos, u64, EventId)> =
            self.heap.iter().map(|s| (s.at, s.seq, s.id)).collect();
        times.sort();
        times
            .into_iter()
            .find(|(_, _, id)| !self.cancelled.contains(id))
            .map(|(at, _, _)| at)
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("processed", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos::from_secs(3), 3);
        q.schedule_at(Nanos::from_secs(1), 1);
        q.schedule_at(Nanos::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Nanos::from_secs(1);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule_after(Nanos::from_secs(5), ());
        q.schedule_after(Nanos::from_secs(1), ());
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), Nanos::from_secs(1));
        q.pop();
        assert_eq!(q.now(), Nanos::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos::from_secs(2), ());
        q.pop();
        q.schedule_at(Nanos::from_secs(1), ());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(Nanos::from_secs(1), "a");
        q.schedule_at(Nanos::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_sees_past_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(Nanos::from_secs(1), "a");
        q.schedule_at(Nanos::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Nanos::from_secs(2)));
    }

    #[test]
    fn schedule_now_runs_after_existing_same_time_events() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos::ZERO, 1);
        q.schedule_now(2);
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn counts_processed() {
        let mut q = EventQueue::new();
        q.schedule_now(());
        q.schedule_now(());
        q.pop();
        q.pop();
        assert_eq!(q.events_processed(), 2);
    }
}

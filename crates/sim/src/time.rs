//! Virtual time for the discrete-event simulation.
//!
//! All simulated experiments in this workspace run on a deterministic
//! virtual clock. Time is represented as an integer number of
//! nanoseconds ([`Nanos`]) so that event ordering is exact and
//! reproducible — floating-point time would make tie-breaking depend on
//! accumulated rounding.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, or a duration, in nanoseconds.
///
/// `Nanos` is deliberately a single type for both instants and
/// durations: the simulation kernel only ever compares and adds times,
/// and a separate `Instant`/`Duration` pair would double the API surface
/// for no safety gain at this scale.
///
/// # Examples
///
/// ```
/// use menos_sim::Nanos;
///
/// let t = Nanos::from_millis(1_500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// assert_eq!(t + Nanos::from_secs_f64(0.5), Nanos::from_secs_f64(2.0));
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero time (simulation epoch).
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable time.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a time from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds, saturating at zero for
    /// negative inputs and at [`Nanos::MAX`] for overly large inputs.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return Nanos::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            Nanos::MAX
        } else {
            Nanos(ns.round() as u64)
        }
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time expressed as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time expressed as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: returns zero instead of wrapping.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition: `None` on overflow.
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// The larger of two times.
    pub fn max(self, rhs: Nanos) -> Nanos {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two times.
    pub fn min(self, rhs: Nanos) -> Nanos {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`; use
    /// [`Nanos::saturating_sub`] when the ordering is not guaranteed.
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3}us", s * 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Time taken to move `bytes` over a link of `bytes_per_sec` throughput.
///
/// Returns [`Nanos::ZERO`] when the rate is non-positive (treated as an
/// infinitely fast resource), which keeps cost models composable.
pub fn transfer_time(bytes: u64, bytes_per_sec: f64) -> Nanos {
    if bytes_per_sec <= 0.0 {
        return Nanos::ZERO;
    }
    Nanos::from_secs_f64(bytes as f64 / bytes_per_sec)
}

/// Time taken to execute `flops` floating-point operations on a device
/// sustaining `flops_per_sec`.
pub fn compute_time(flops: f64, flops_per_sec: f64) -> Nanos {
    if flops_per_sec <= 0.0 {
        return Nanos::ZERO;
    }
    Nanos::from_secs_f64(flops / flops_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_secs(2), Nanos::from_millis(2_000));
        assert_eq!(Nanos::from_millis(3), Nanos::from_micros(3_000));
        assert_eq!(Nanos::from_micros(5), Nanos::from_nanos(5_000));
    }

    #[test]
    fn secs_f64_round_trip() {
        let t = Nanos::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::INFINITY), Nanos::MAX);
        assert_eq!(Nanos::from_secs_f64(1e30), Nanos::MAX);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_secs(1);
        let b = Nanos::from_millis(500);
        assert_eq!(a + b, Nanos::from_millis(1500));
        assert_eq!(a - b, Nanos::from_millis(500));
        assert_eq!(b * 4, Nanos::from_secs(2));
        assert_eq!(a / 4, Nanos::from_millis(250));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
    }

    #[test]
    fn sum_and_minmax() {
        let total: Nanos = [Nanos::from_secs(1), Nanos::from_secs(2)].into_iter().sum();
        assert_eq!(total, Nanos::from_secs(3));
        assert_eq!(
            Nanos::from_secs(1).max(Nanos::from_secs(2)),
            Nanos::from_secs(2)
        );
        assert_eq!(
            Nanos::from_secs(1).min(Nanos::from_secs(2)),
            Nanos::from_secs(1)
        );
    }

    #[test]
    fn display_units() {
        assert_eq!(Nanos::from_secs_f64(1.5).to_string(), "1.500s");
        assert_eq!(Nanos::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Nanos::from_micros(7).to_string(), "7.000us");
        assert_eq!(Nanos::from_nanos(42).to_string(), "42ns");
    }

    #[test]
    fn transfer_and_compute_time() {
        // 4 MB at 4 MB/s is one second.
        assert_eq!(transfer_time(4_000_000, 4e6), Nanos::from_secs(1));
        // Zero-rate resources are free.
        assert_eq!(transfer_time(1, 0.0), Nanos::ZERO);
        assert_eq!(compute_time(14e12, 14e12), Nanos::from_secs(1));
        assert_eq!(compute_time(1.0, -1.0), Nanos::ZERO);
    }
}

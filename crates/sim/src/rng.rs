//! Deterministic random-number helpers.
//!
//! Every stochastic element of the reproduction (synthetic corpora,
//! weight initialization, network jitter) draws from seeded
//! [`rand::rngs::StdRng`] instances derived here, so experiment outputs
//! are bit-stable across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives an independent [`StdRng`] from a root seed and a label.
///
/// Labels keep streams independent: reordering the *amount* of
/// randomness drawn by one subsystem does not perturb another, which
/// keeps e.g. convergence curves stable when network jitter is toggled.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let mut a = menos_sim::seeded_rng(42, "weights");
/// let mut b = menos_sim::seeded_rng(42, "weights");
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// let mut c = menos_sim::seeded_rng(42, "jitter");
/// // Different labels give independent streams (virtually certain to differ).
/// let _ = c.gen::<u64>();
/// ```
pub fn seeded_rng(seed: u64, label: &str) -> StdRng {
    // FNV-1a over the label mixed into the seed: cheap, stable, and
    // good enough to decorrelate a handful of named streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

/// Samples a multiplicative jitter factor in `[1 - amount, 1 + amount]`.
///
/// Used by the network and GPU cost models to add bounded variation to
/// simulated durations without breaking determinism.
///
/// # Panics
///
/// Panics if `amount` is negative or not finite.
pub fn jitter_factor<R: Rng>(rng: &mut R, amount: f64) -> f64 {
    assert!(
        amount.is_finite() && amount >= 0.0,
        "bad jitter amount {amount}"
    );
    if amount == 0.0 {
        return 1.0;
    }
    1.0 + rng.gen_range(-amount..=amount)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(7, "x");
        let mut b = seeded_rng(7, "x");
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = seeded_rng(7, "x");
        let mut b = seeded_rng(7, "y");
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1, "x");
        let mut b = seeded_rng(2, "x");
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = seeded_rng(3, "jitter");
        for _ in 0..1000 {
            let f = jitter_factor(&mut rng, 0.1);
            assert!((0.9..=1.1).contains(&f));
        }
        assert_eq!(jitter_factor(&mut rng, 0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "bad jitter amount")]
    fn jitter_rejects_negative() {
        let mut rng = seeded_rng(3, "jitter");
        jitter_factor(&mut rng, -0.5);
    }
}

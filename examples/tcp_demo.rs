//! Deployment demo: split fine-tuning over **real TCP sockets** —
//! the full Menos server façade behind an accept loop, three clients
//! connecting over loopback, each training against the shared base
//! model.
//!
//! The same protocol runs geo-distributed in the paper; here the wire
//! is localhost, but every byte crosses an actual socket through the
//! unified frame codec, and the accept loop pumps the same
//! `MenosServer` state machine the in-memory transports drive.
//!
//! ```bash
//! cargo run --example tcp_demo --release
//! ```

use std::sync::{Arc, Mutex};

use menos::adapters::FineTuneConfig;
use menos::core::{MenosServer, ServerMode, ServerSpec};
use menos::data::{wiki_corpus, TokenDataset, Vocab};
use menos::models::{CausalLm, ModelConfig};
use menos::sim::seeded_rng;
use menos::split::{run_tcp_client, ClientId, SplitClient, SplitSpec, TcpSplitServer};

fn main() {
    let text = wiki_corpus(77, 20_000);
    let vocab = Vocab::from_text(&text);
    let config = ModelConfig::tiny_llama(vocab.size());
    let mut rng = seeded_rng(77, "tcp-demo");
    let base = Arc::new(Mutex::new(menos::models::init_params(&config, &mut rng)));

    const CLIENTS: usize = 3;
    // The server shares the exact in-process base the clients bind to
    // (a provider would distribute the client sections instead).
    let menos_server = MenosServer::from_store(
        config.clone(),
        base.lock().unwrap().shared_view(false),
        ServerSpec::v100(ServerMode::menos()),
        9000,
    );
    let handler = Arc::new(Mutex::new(menos_server));
    let server =
        TcpSplitServer::spawn("127.0.0.1:0", handler.clone(), CLIENTS).expect("bind server");
    let addr = server.addr();
    println!("Menos TCP server listening on {addr} (Menos policy: no-grad + re-forward)\n");

    let mut handles = Vec::new();
    for k in 0..CLIENTS as u64 {
        let text = text.clone();
        let config = config.clone();
        let base = base.clone();
        handles.push(std::thread::spawn(move || {
            let vocab = Vocab::from_text(&text);
            let mut ft = FineTuneConfig::paper(&config);
            ft.batch_size = 2;
            ft.seq_len = 24;
            let ds = TokenDataset::new(vocab.encode(&text), 24, k);
            let view = base.lock().unwrap().shared_view(false);
            let mut client = SplitClient::new(
                ClientId(k),
                CausalLm::bind(&config, &view),
                SplitSpec::paper(),
                ft,
                ds,
                k,
            );
            let curve = run_tcp_client(addr, &mut client, 12).expect("training over TCP");
            (k, curve)
        }));
    }

    for h in handles {
        let (k, curve) = h.join().expect("client thread");
        println!(
            "client-{k}: loss {:.3} -> {:.3} over {} steps (all bytes via TCP)",
            curve.points()[0].1,
            curve.final_loss().unwrap(),
            curve.points().len()
        );
    }
    server.join();
    let sessions_left = handler.lock().unwrap().active_clients();
    println!("\nsessions still held after disconnects: {sessions_left} (memory reclaimed)");
    println!("tcp demo OK — the protocol is transport-agnostic: the paper-scale");
    println!("experiments swap this socket for the simulated geo-distributed WAN.");
}

//! Fine-tune, then *use* the model: split-train a tiny Llama-style
//! model on the Shakespeare corpus and compare greedy generations
//! before and after — the downstream payoff of the whole pipeline.
//!
//! ```bash
//! cargo run --example finetune_and_generate --release
//! ```

use menos::adapters::FineTuneConfig;
use menos::core::SharedBaseRegistry;
use menos::data::{shakespeare_corpus, TokenDataset, Vocab};
use menos::models::{CausalLm, GenerateConfig, ModelConfig};
use menos::sim::seeded_rng;
use menos::split::{run_split_steps, ClientId, ForwardMode, ServerSession, SplitClient, SplitSpec};
use menos::tensor::{load_checkpoint, restore_into, save_checkpoint};

fn main() {
    let text = shakespeare_corpus(40_000);
    let vocab = Vocab::from_text(&text);
    let config = ModelConfig::tiny_llama(vocab.size());
    let mut registry = SharedBaseRegistry::initialize(config.clone(), 21);

    let mut ft = FineTuneConfig::paper(&config);
    ft.batch_size = 4;
    ft.seq_len = 48;
    ft.optimizer = menos::adapters::OptimKind::Adam { lr: 2e-3 };
    let split = SplitSpec::paper();

    let prompt_text = "First Citizen: ";
    let prompt = vocab.encode(prompt_text);
    let gen_cfg = GenerateConfig {
        max_tokens: 60,
        temperature: 0.7,
        top_k: 6,
        top_p: 0.95,
    };

    // Generation BEFORE fine-tuning (random weights babble).
    let reference = CausalLm::bind(&config, registry.base_store());
    let mut rng = seeded_rng(21, "gen");
    let before = reference.generate(&prompt, &gen_cfg, &mut rng);
    println!(
        "before fine-tuning:\n  {:?}\n",
        vocab.decode(&before[prompt.len()..])
    );

    // Split fine-tuning.
    let ds = TokenDataset::new(vocab.encode(&text), ft.seq_len, 21);
    let mut client = SplitClient::new(
        ClientId(0),
        CausalLm::bind(&config, registry.base_store()),
        split,
        ft.clone(),
        ds,
        21,
    );
    let mut session = ServerSession::new(ClientId(0), registry.new_instance(), split, &ft, 21);
    println!("split fine-tuning 200 steps...");
    let curve = run_split_steps(&mut client, &mut session, ForwardMode::NoGradReforward, 200);
    println!(
        "  loss {:.3} -> {:.3}\n",
        curve.points()[0].1,
        curve.final_loss().unwrap()
    );

    // Checkpoint the server-side adapters — the client's artifact is a
    // few KB, not a model.
    let ckpt = save_checkpoint(session.adapter_params());
    println!(
        "server adapter checkpoint: {} bytes ({} tensors)\n",
        ckpt.len(),
        session.adapter_params().len()
    );

    // Generation AFTER fine-tuning, from a model that stitches the
    // server's tuned adapters onto a fresh shared-base instance —
    // exactly what serving a tuned client looks like.
    let mut tuned = registry.new_instance();
    let mut adapter_rng = seeded_rng(21, "server-adapters");
    let tuned_params = menos::adapters::inject_adapters(
        &mut tuned,
        split.server_range(&config),
        &ft,
        &mut adapter_rng,
    );
    restore_into(&tuned_params, &load_checkpoint(&ckpt).expect("checkpoint")).expect("restore");
    // Note: front-block adapters live on the client; for this demo the
    // server-side adapters dominate (all but one block).
    let after = tuned.generate(&prompt, &gen_cfg, &mut rng);
    println!("after fine-tuning (server adapters restored from checkpoint):");
    println!("  {:?}", vocab.decode(&after[prompt.len()..]));

    assert_ne!(before, after, "fine-tuning should change generations");
    println!("\nfinetune-and-generate OK");
}

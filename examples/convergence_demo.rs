//! Convergence demo (Figs. 8–9 in miniature): three split clients and a
//! local baseline fine-tune tiny models on the synthetic corpora, and
//! all reach the same perplexity — split learning changes *where*
//! computation happens, not *what* it computes.
//!
//! ```bash
//! cargo run --example convergence_demo --release
//! ```

use menos::models::Arch;
use menos_bench::convergence::{run_convergence, Corpus};

fn main() {
    for (arch, label) in [(Arch::Opt, "tiny-OPT"), (Arch::Llama, "tiny-Llama")] {
        for corpus in [Corpus::Wiki, Corpus::Shakespeare] {
            let report = run_convergence(arch, corpus, 3, 25, 11);
            println!(
                "== {label} on {} (round {:.1}s simulated) ==",
                corpus.label(),
                report.round_seconds
            );
            println!(
                "  local baseline : final ppl {:.3}",
                report.local.final_perplexity()
            );
            for c in &report.split_clients {
                let (t, _) = c.points.last().copied().unwrap_or((0.0, 0.0));
                println!(
                    "  {:<15}: final ppl {:.3} at virtual t={:.0}s",
                    c.label,
                    c.final_perplexity(),
                    t
                );
            }
            println!();
        }
    }
    println!("all split clients converge to the local baseline's perplexity,");
    println!("shifted right in time by the WAN-bound rounds — Figs. 8-9's shape.");
}

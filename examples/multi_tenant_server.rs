//! Multi-tenant serving: three clients with *different* fine-tuning
//! methods (LoRA r=8, LoRA r=16, prefix tuning) and different cut
//! layers share one base model on the server — the scenario Fig. 2 of
//! the paper illustrates.
//!
//! ```bash
//! cargo run --example multi_tenant_server --release
//! ```

use menos::adapters::{AdapterKind, FineTuneConfig, OptimKind};
use menos::core::{profile_client, SharedBaseRegistry};
use menos::data::{shakespeare_corpus, wiki_corpus, TokenDataset, Vocab};
use menos::models::{AdapterTarget, CausalLm, LoraSpec, ModelConfig, ModelProfile};
use menos::split::{run_split_steps, ClientId, ForwardMode, ServerSession, SplitClient, SplitSpec};
use menos::tensor::Tensor;

struct Tenant {
    name: &'static str,
    ft: FineTuneConfig,
    split: SplitSpec,
    corpus: String,
}

fn main() {
    let sample = wiki_corpus(9, 30_000) + &shakespeare_corpus(30_000);
    let vocab = Vocab::from_text(&sample);
    let config = ModelConfig::tiny_opt(vocab.size());
    let mut registry = SharedBaseRegistry::initialize(config.clone(), 9);

    let base_ft = FineTuneConfig {
        adapter: AdapterKind::Lora {
            spec: LoraSpec {
                rank: 8,
                alpha: 16.0,
                targets_per_block: 2,
            },
            targets: vec![AdapterTarget::Q, AdapterTarget::V],
        },
        optimizer: OptimKind::Adam { lr: 3e-4 },
        batch_size: 4,
        seq_len: 32,
        grad_accumulation: 1,
    };

    // Three tenants with different adapters, cuts, and private corpora.
    let tenants = [
        Tenant {
            name: "hospital (LoRA r=8, shallow cut)",
            ft: base_ft.clone(),
            split: SplitSpec::new(1),
            corpus: wiki_corpus(100, 30_000),
        },
        Tenant {
            name: "law firm (LoRA r=16, deeper cut for privacy)",
            ft: FineTuneConfig {
                adapter: AdapterKind::Lora {
                    spec: LoraSpec {
                        rank: 16,
                        alpha: 32.0,
                        targets_per_block: 2,
                    },
                    targets: vec![AdapterTarget::Q, AdapterTarget::V],
                },
                ..base_ft.clone()
            },
            split: SplitSpec::new(2),
            corpus: wiki_corpus(200, 30_000),
        },
        Tenant {
            name: "theatre (prefix tuning)",
            ft: FineTuneConfig {
                adapter: AdapterKind::Prefix { len: 8 },
                optimizer: OptimKind::Adam { lr: 1e-3 },
                ..base_ft.clone()
            },
            split: SplitSpec::new(1),
            corpus: shakespeare_corpus(30_000),
        },
    ];

    println!(
        "shared base: {} — {} bytes, loaded once\n",
        config.name,
        registry.base_bytes()
    );

    let mut sessions = Vec::new();
    let mut clients = Vec::new();
    for (i, t) in tenants.iter().enumerate() {
        let ds = TokenDataset::new(vocab.encode(&t.corpus), t.ft.seq_len, i as u64);
        let client = SplitClient::new(
            ClientId(i as u64),
            CausalLm::bind(&config, registry.base_store()),
            t.split,
            t.ft.clone(),
            ds,
            1000 + i as u64,
        );
        let session = ServerSession::new(
            ClientId(i as u64),
            registry.new_instance(),
            t.split,
            &t.ft,
            1000 + i as u64,
        );
        assert!(registry.verify_aliasing(session.model()));
        clients.push(client);
        sessions.push(session);
    }

    // Every pair of sessions shares the base but owns private adapters.
    for a in 0..sessions.len() {
        for b in (a + 1)..sessions.len() {
            for (x, y) in sessions[a]
                .model()
                .base_params()
                .iter()
                .zip(sessions[b].model().base_params())
            {
                assert!(Tensor::same_storage(x, &y), "base must be shared");
            }
            assert!(
                !sessions[a]
                    .adapter_params()
                    .shares_storage_with(sessions[b].adapter_params()),
                "adapters must be private"
            );
        }
    }
    println!("verified: one base copy, three private adapter sets\n");

    // Analytic accounting at paper scale for the same three tenants.
    let paper_cfg = ModelConfig::llama2_7b();
    let paper_profile = ModelProfile::new(paper_cfg.clone(), 1);
    let d = profile_client(&paper_profile, &FineTuneConfig::paper(&paper_cfg));
    println!(
        "at Llama-2-7B scale this saves {:.1} GiB of duplicated weights per extra client",
        paper_profile.server_param_bytes() as f64 / (1u64 << 30) as f64
    );
    println!(
        "while each client adds only {:.0} MiB of adapter+optimizer state\n",
        d.persistent as f64 / (1 << 20) as f64
    );

    // Interleave training: each tenant fine-tunes on its own data.
    for (t, (client, session)) in tenants.iter().zip(clients.iter_mut().zip(&mut sessions)) {
        let curve = run_split_steps(client, session, ForwardMode::NoGradReforward, 15);
        println!(
            "{:<45} loss {:.3} -> {:.3}",
            t.name,
            curve.points()[0].1,
            curve.final_loss().unwrap()
        );
        assert!(curve.final_loss().unwrap() < curve.points()[0].1 + 0.05);
    }
    println!("\nmulti-tenant serving OK — three adapter methods over one frozen base");
}

//! Quickstart: one client split-fine-tunes a tiny Llama-style model
//! against a Menos-style server session, end to end.
//!
//! ```bash
//! cargo run --example quickstart --release
//! ```
//!
//! What you will see: the four-step protocol running for a handful of
//! iterations, the loss falling, and the base-model sharing invariant
//! verified (the server session's weights alias the registry's single
//! copy).

use menos::adapters::FineTuneConfig;
use menos::core::SharedBaseRegistry;
use menos::data::{perplexity, wiki_corpus, TokenDataset, Vocab};
use menos::models::{CausalLm, ModelConfig};
use menos::split::{run_split_steps, ClientId, ForwardMode, ServerSession, SplitClient, SplitSpec};

fn main() {
    // 1. The model owner loads the base model ONCE into the registry.
    let vocab_text = wiki_corpus(42, 30_000);
    let vocab = Vocab::from_text(&vocab_text);
    let config = ModelConfig::tiny_llama(vocab.size());
    let mut registry = SharedBaseRegistry::initialize(config.clone(), 42);
    println!(
        "base model: {} ({} parameters, one shared copy)",
        config.name,
        config.total_params()
    );

    // 2. A client connects with its private data and fine-tuning config.
    let dataset = TokenDataset::new(vocab.encode(&vocab_text), 32, 42);
    let mut ft = FineTuneConfig::paper(&config);
    ft.batch_size = 4;
    ft.seq_len = 32;
    let split = SplitSpec::paper(); // embedding + first block on the client

    let mut client = SplitClient::new(
        ClientId(0),
        CausalLm::bind(&config, registry.base_store()),
        split,
        ft.clone(),
        dataset,
        7,
    );

    // 3. The server mints a per-client model instance over the SHARED
    //    base and injects this client's adapters into it.
    let instance = registry.new_instance();
    let mut session = ServerSession::new(ClientId(0), instance, split, &ft, 7);
    assert!(
        registry.verify_aliasing(session.model()),
        "server session must alias the shared base"
    );

    // 4. Split fine-tuning, using Menos' no-grad + re-forward execution.
    println!("\nrunning 20 split fine-tuning iterations (Menos policy)...");
    let curve = run_split_steps(&mut client, &mut session, ForwardMode::NoGradReforward, 20);

    for (step, loss) in curve.points().iter().step_by(4) {
        println!(
            "  step {step:>2}: loss {loss:.4}  perplexity {:.2}",
            perplexity(*loss)
        );
    }
    let first = curve.points()[0].1;
    let last = curve.final_loss().expect("losses recorded");
    println!("\nloss {first:.4} -> {last:.4} over 20 steps");
    println!(
        "server re-forwards executed: {} (one per backward — the time/memory trade)",
        session.reforward_count()
    );
    assert!(last < first, "training should reduce the loss");
    println!("\nquickstart OK");
}

//! Capacity planning: a provider wants to know how many concurrent
//! fine-tuning clients one server can sustain for a target round time —
//! the operational question Menos' paper motivates (GPU cost of serving
//! split fine-tuning).
//!
//! Sweeps client count and GPU count for both models, under Menos and
//! the vanilla baseline, using the paper-scale timed simulation.
//!
//! ```bash
//! cargo run --example capacity_planning --release
//! ```

use menos::core::{run_experiment, ServerMode, ServerSpec, WorkloadSpec};
use menos::models::ModelConfig;

fn main() {
    let target_round_s = 10.0;
    println!("capacity planning: max clients with round time <= {target_round_s:.0}s\n");

    for (label, cfg) in [
        ("OPT-1.3B", ModelConfig::opt_1_3b()),
        ("Llama-2-7B", ModelConfig::llama2_7b()),
    ] {
        println!("== {label} ==");
        for gpus in [1usize, 2, 4] {
            let mut menos_cap = 0;
            let mut vanilla_cap = 0;
            for n in 1..=24usize {
                let w = WorkloadSpec::paper(cfg.clone(), n, 6);
                let mut server = ServerSpec::v100(ServerMode::menos());
                server.gpus = gpus;
                let r = run_experiment(&server, &w, 7);
                if r.error.is_none() && r.avg_round_s <= target_round_s {
                    menos_cap = n;
                }
                let mut server = ServerSpec::v100(ServerMode::VanillaSwapping);
                server.gpus = gpus;
                let r = run_experiment(&server, &w, 7);
                if r.error.is_none() && r.avg_round_s <= target_round_s {
                    vanilla_cap = n;
                }
            }
            println!(
                "  {gpus} GPU(s): Menos sustains {menos_cap:>2} clients, vanilla {vanilla_cap:>2}"
            );
        }
        println!();
    }
    println!("Menos' shared base + on-demand scheduling multiplies how many");
    println!("clients a fixed GPU budget serves — the paper's economic claim.");
}
